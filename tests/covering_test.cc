#include "graph/covering.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace dpsp {
namespace {

// Exhaustive check of the covering property via BFS from every vertex.
void ExpectIsKCovering(const Graph& graph, const Covering& covering) {
  ASSERT_OK(ValidateCovering(graph, covering));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ASSERT_OK_AND_ASSIGN(std::vector<int> hops, HopDistances(graph, v));
    int best = graph.num_vertices() + 1;
    for (VertexId z : covering.centers) {
      if (hops[static_cast<size_t>(z)] >= 0) {
        best = std::min(best, hops[static_cast<size_t>(z)]);
      }
    }
    EXPECT_LE(best, covering.k) << "vertex " << v << " uncovered";
    // The assignment must also be within k (and consistent).
    EXPECT_LE(covering.assignment_hops[static_cast<size_t>(v)], covering.k);
    EXPECT_EQ(covering.assignment_hops[static_cast<size_t>(v)],
              hops[static_cast<size_t>(covering.CenterOf(v))]);
  }
}

TEST(MM75CoveringTest, PathGraphSizeBound) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(30));
  for (int k : {1, 2, 4, 7}) {
    ASSERT_OK_AND_ASSIGN(Covering covering, MM75ResidueCovering(g, k));
    ExpectIsKCovering(g, covering);
    // Lemma 4.4 plus the +1 endpoint insertion.
    EXPECT_LE(covering.size(), 30 / (k + 1) + 1);
  }
}

TEST(MM75CoveringTest, KZeroIsAllVertices) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(7));
  ASSERT_OK_AND_ASSIGN(Covering covering, MM75ResidueCovering(g, 0));
  EXPECT_EQ(covering.size(), 7);
  ExpectIsKCovering(g, covering);
}

TEST(MM75CoveringTest, RequiresEnoughVertices) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  EXPECT_FALSE(MM75ResidueCovering(g, 5).ok());
}

TEST(MM75CoveringTest, DisconnectedRejected) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(MM75ResidueCovering(g, 1).ok());
}

TEST(GreedyCoveringTest, CoversAndIsReasonable) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(40, 0.1, &rng));
  for (int k : {1, 2, 3}) {
    ASSERT_OK_AND_ASSIGN(Covering covering, GreedyCovering(g, k));
    ExpectIsKCovering(g, covering);
    EXPECT_GE(covering.size(), 1);
  }
}

TEST(GreedyCoveringTest, CompleteGraphNeedsOneCenter) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteGraph(10));
  ASSERT_OK_AND_ASSIGN(Covering covering, GreedyCovering(g, 1));
  EXPECT_EQ(covering.size(), 1);
  ExpectIsKCovering(g, covering);
}

TEST(GridCoveringTest, Theorem47Pattern) {
  // 9x9 grid, stride 3: centers at rows/cols {2, 5, 8}; k = 4.
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(9, 9));
  ASSERT_OK_AND_ASSIGN(Covering covering, GridCovering(g, 9, 9, 3));
  EXPECT_EQ(covering.size(), 9);
  EXPECT_EQ(covering.k, 4);
  ExpectIsKCovering(g, covering);
}

TEST(GridCoveringTest, StrideOneIsEveryVertex) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(4, 4));
  ASSERT_OK_AND_ASSIGN(Covering covering, GridCovering(g, 4, 4, 1));
  EXPECT_EQ(covering.size(), 16);
  EXPECT_EQ(covering.k, 0);
}

TEST(GridCoveringTest, NonSquareGrid) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(5, 8));
  ASSERT_OK_AND_ASSIGN(Covering covering, GridCovering(g, 5, 8, 2));
  ExpectIsKCovering(g, covering);
}

TEST(GridCoveringTest, RejectsMismatchedDimensions) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(3, 3));
  EXPECT_FALSE(GridCovering(g, 2, 3, 1).ok());
  EXPECT_FALSE(GridCovering(g, 3, 3, 0).ok());
}

TEST(AssignToCentersTest, FailsWhenTooFar) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(10));
  EXPECT_FALSE(AssignToCenters(g, {0}, 3).ok());
  EXPECT_OK(AssignToCenters(g, {0}, 9).status());
}

TEST(AssignToCentersTest, DeduplicatesCenters) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  ASSERT_OK_AND_ASSIGN(Covering covering, AssignToCenters(g, {1, 1, 2}, 2));
  EXPECT_EQ(covering.size(), 2);
}

class MM75PropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MM75PropertyTest, ValidOnRandomGraphs) {
  auto [n, k] = GetParam();
  if (n < k + 1) GTEST_SKIP();
  Rng rng(kTestSeed + static_cast<uint64_t>(n * 31 + k));
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(n, 0.08, &rng));
  ASSERT_OK_AND_ASSIGN(Covering covering, MM75ResidueCovering(g, k));
  ExpectIsKCovering(g, covering);
  EXPECT_LE(covering.size(), n / (k + 1) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MM75PropertyTest,
                         ::testing::Combine(::testing::Values(8, 20, 50, 90),
                                            ::testing::Values(1, 2, 3, 5, 8)));

}  // namespace
}  // namespace dpsp
