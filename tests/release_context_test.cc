// Tests for the shared release pipeline context: validate-once parameters,
// accountant metering, total-budget enforcement with rollback, and the
// telemetry trail.

#include "dp/release_context.h"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "core/tree_distance.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(ReleaseContextTest, ValidatesParamsOnceAtCreation) {
  PrivacyParams bad{/*epsilon=*/-1.0, 0.0, 1.0};
  EXPECT_FALSE(ReleaseContext::Create(bad, kTestSeed).ok());

  PrivacyParams bad_delta{1.0, /*delta=*/1.5, 1.0};
  EXPECT_FALSE(ReleaseContext::Create(bad_delta, kTestSeed).ok());

  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  EXPECT_OK(ctx.params().Validate());
  EXPECT_EQ(ctx.accountant().num_releases(), 0);
  EXPECT_EQ(ctx.last_telemetry(), nullptr);
}

TEST(ReleaseContextTest, ChargeReleaseMetersTheAccountant) {
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.5, 0.0, 1.0}, kTestSeed));
  ASSERT_OK(ctx.ChargeRelease("first"));
  ASSERT_OK(ctx.ChargeRelease("second", 0.25, 0.0));
  EXPECT_EQ(ctx.accountant().num_releases(), 2);
  EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().epsilon, 0.75);
}

TEST(ReleaseContextTest, TotalBudgetBlocksOverspendAndRollsBack) {
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  ctx.SetTotalBudget(PrivacyParams{1.5, 0.0, 1.0});
  ASSERT_OK(ctx.ChargeRelease("fits"));

  Status overspend = ctx.ChargeRelease("does-not-fit");
  EXPECT_FALSE(overspend.ok());
  EXPECT_EQ(overspend.code(), StatusCode::kFailedPrecondition);
  // The rejected charge left the ledger untouched.
  EXPECT_EQ(ctx.accountant().num_releases(), 1);

  // A smaller release still fits.
  ASSERT_OK(ctx.ChargeRelease("small", 0.25, 0.0));
  EXPECT_EQ(ctx.accountant().num_releases(), 2);
}

TEST(ReleaseContextTest, BudgetExhaustionStopsOracleConstruction) {
  Rng unused(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  EdgeWeights w(static_cast<size_t>(g.num_edges()), 1.0);

  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  ctx.SetTotalBudget(PrivacyParams{1.0, 0.0, 1.0});
  ASSERT_OK_AND_ASSIGN(auto first, TreeAllPairsOracle::Build(g, w, ctx));
  (void)first;

  auto second = TreeAllPairsOracle::Build(g, w, ctx);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ctx.accountant().num_releases(), 1);
  EXPECT_EQ(ctx.telemetry().size(), 1u);
}

TEST(ReleaseContextTest, PureBudgetAcceptsBasicCompositionFit) {
  // Regression: once the advanced-composition epsilon drops below the
  // basic total, its delta_slack must not disqualify a pure (delta = 0)
  // budget that the basic total certifiably fits.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.05, 0.0, 1.0}, kTestSeed));
  ctx.SetTotalBudget(PrivacyParams{5.0, 0.0, 1.0}, /*delta_slack=*/1e-9);
  for (int i = 0; i < 96; ++i) {
    ASSERT_OK(ctx.ChargeRelease(StrFormat("refresh-%02d", i)));
  }
  EXPECT_EQ(ctx.accountant().num_releases(), 96);
  EXPECT_NEAR(ctx.accountant().BasicTotal().epsilon, 4.8, 1e-9);
}

TEST(ReleaseContextTest, FailedBuildConsumesNoBudget) {
  // A factory that fails validation must leave the shared ledger and
  // telemetry untouched (CommitRelease runs only after a successful
  // build).
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph cycle,
                       Graph::Create(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  EdgeWeights w(4, 1.0);
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));

  auto not_a_tree = TreeAllPairsOracle::Build(cycle, w, ctx);
  EXPECT_FALSE(not_a_tree.ok());
  EXPECT_EQ(ctx.accountant().num_releases(), 0);
  EXPECT_TRUE(ctx.telemetry().empty());
}

TEST(ReleaseContextTest, TelemetryAccumulatesPerRelease) {
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  ReleaseTelemetry t;
  t.mechanism = "fake";
  t.epsilon = 1.0;
  t.noise_draws = 7;
  ctx.RecordTelemetry(t);
  ASSERT_NE(ctx.last_telemetry(), nullptr);
  EXPECT_EQ(ctx.last_telemetry()->mechanism, "fake");
  EXPECT_EQ(ctx.last_telemetry()->noise_draws, 7);
  EXPECT_NE(ctx.ToString().find("fake"), std::string::npos);
}

TEST(ReleaseContextTest, SeededRngIsDeterministic) {
  ASSERT_OK_AND_ASSIGN(ReleaseContext a,
                       ReleaseContext::Create(PrivacyParams{}, 42));
  ASSERT_OK_AND_ASSIGN(ReleaseContext b,
                       ReleaseContext::Create(PrivacyParams{}, 42));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.rng()->Uniform(), b.rng()->Uniform());
  }
}

TEST(ReleaseContextTest, ShardExhaustionSurfacesAtAbsorbNotMidBuild) {
  // A forked shard carries no ceiling by design: the parent's budget is
  // enforced when the shard is absorbed. A shard that overspends relative
  // to what the parent has left therefore builds fine and fails at
  // AbsorbShard, leaving both ledgers intact.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext parent,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  parent.SetTotalBudget(PrivacyParams{2.5, 0.0, 1.0});
  ASSERT_OK(parent.ChargeRelease("parent-spend"));  // 1.0 of 2.5 used

  ReleaseContext shard = parent.Fork();
  EXPECT_FALSE(shard.has_total_budget());
  ASSERT_OK(shard.ChargeRelease("shard-1"));
  ASSERT_OK(shard.ChargeRelease("shard-2"));  // shard total 2.0: too much

  Status absorb = parent.AbsorbShard(shard);
  EXPECT_FALSE(absorb.ok());
  EXPECT_EQ(absorb.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(parent.accountant().num_releases(), 1);
  EXPECT_EQ(shard.accountant().num_releases(), 2);
}

TEST(ReleaseContextTest, AbsorbAfterRollbackStillComposes) {
  // After a rejected absorb the parent must keep working: a smaller shard
  // absorbs, and direct charges against the remaining budget behave as if
  // the failed absorb never happened.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext parent,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  parent.SetTotalBudget(PrivacyParams{2.0, 0.0, 1.0});

  ReleaseContext too_big = parent.Fork();
  ASSERT_OK(too_big.ChargeRelease("a"));
  ASSERT_OK(too_big.ChargeRelease("b"));
  ASSERT_OK(too_big.ChargeRelease("c"));
  EXPECT_FALSE(parent.AbsorbShard(too_big).ok());
  EXPECT_EQ(parent.accountant().num_releases(), 0);

  ReleaseContext fits = parent.Fork();
  ASSERT_OK(fits.ChargeRelease("d"));
  ASSERT_OK(parent.AbsorbShard(fits));
  EXPECT_EQ(parent.accountant().num_releases(), 1);
  EXPECT_DOUBLE_EQ(parent.accountant().BasicTotal().epsilon, 1.0);

  // Exactly one more eps=1 release fits the 2.0 ceiling.
  ASSERT_OK(parent.ChargeRelease("direct"));
  EXPECT_FALSE(parent.ChargeRelease("over").ok());
  EXPECT_EQ(parent.accountant().num_releases(), 2);
}

TEST(ReleaseContextTest, DefaultPolicyIsBasic) {
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  EXPECT_EQ(ctx.policy(), AccountingPolicy::kBasic);
  EXPECT_EQ(ctx.accountant().policy(), AccountingPolicy::kBasic);
}

TEST(ReleaseContextTest, PolicySelectsTheAccountant) {
  for (AccountingPolicy policy :
       {AccountingPolicy::kBasic, AccountingPolicy::kAdvanced,
        AccountingPolicy::kZcdp}) {
    ASSERT_OK_AND_ASSIGN(
        ReleaseContext ctx,
        ReleaseContext::Create(PrivacyParams{0.5, 1e-6, 1.0}, kTestSeed,
                               policy));
    EXPECT_EQ(ctx.policy(), policy);
    // Forked shards inherit the parent's policy.
    EXPECT_EQ(ctx.Fork().policy(), policy);
  }
}

TEST(ReleaseContextTest, ZcdpPolicyRefusesApproximateLaplaceReleases) {
  // Approximate params charge an approximate-DP loss, which has no exact
  // zCDP rate; the zCDP context refuses BEFORE any noise would be drawn.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.5, 1e-6, 1.0}, kTestSeed,
                             AccountingPolicy::kZcdp));
  Status status = ctx.ChargeRelease("laplace-approx");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ctx.accountant().num_releases(), 0);
  // A Gaussian loss at the same params is its natural currency.
  ASSERT_OK_AND_ASSIGN(PrivacyLoss gaussian,
                       PrivacyLoss::GaussianFromParams(ctx.params()));
  EXPECT_OK(ctx.ChargeRelease("gaussian", gaussian));
}

TEST(ReleaseContextTest, ZcdpBudgetAdmitsMoreGaussianReleasesThanBasic) {
  // The point of the policy: under the same ceiling, rho-sum accounting
  // admits strictly more identical Gaussian releases than summing each
  // release's (eps, delta) certificate.
  PrivacyParams per_release{0.5, 1e-6, 1.0};
  PrivacyParams budget{2.0, 1e-4, 1.0};
  auto count_admitted = [&](AccountingPolicy policy) {
    ReleaseContext ctx =
        ReleaseContext::Create(per_release, kTestSeed, policy).value();
    ctx.SetTotalBudget(budget, /*delta_slack=*/1e-5);
    PrivacyLoss loss = PrivacyLoss::GaussianFromParams(per_release).value();
    int admitted = 0;
    while (ctx.ChargeRelease("gaussian-refresh", loss).ok()) ++admitted;
    return admitted;
  };
  int basic = count_admitted(AccountingPolicy::kBasic);
  int zcdp = count_admitted(AccountingPolicy::kZcdp);
  EXPECT_GT(zcdp, basic);
  EXPECT_EQ(basic, 4);  // floor(2.0 / 0.5) under Lemma 3.3
}

TEST(ReleaseContextTest, SpentAndRemainingBudgetTrackThePolicy) {
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.5, 0.0, 1.0}, kTestSeed));
  // No budget installed: infinite headroom.
  EXPECT_TRUE(std::isinf(ctx.RemainingBudget().epsilon));
  ctx.SetTotalBudget(PrivacyParams{2.0, 0.0, 1.0});
  ASSERT_OK(ctx.ChargeRelease("one"));
  ASSERT_OK(ctx.ChargeRelease("two"));
  EXPECT_DOUBLE_EQ(ctx.SpentTotal().epsilon, 1.0);
  EXPECT_DOUBLE_EQ(ctx.RemainingBudget().epsilon, 1.0);
  EXPECT_DOUBLE_EQ(ctx.RemainingBudget().delta, 0.0);
}

TEST(ReleaseContextTest, DeltaExhaustedLedgerReportsZeroHeadroom) {
  // A ledger whose summed delta already exceeds a later-installed
  // budget's delta can never admit again under any bound; epsilon
  // headroom must read zero, not budget-minus-basic-epsilon.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.1, 1e-4, 1.0}, kTestSeed));
  for (int i = 0; i < 5; ++i) ASSERT_OK(ctx.ChargeRelease("early"));
  ctx.SetTotalBudget(PrivacyParams{4.0, 1e-4, 1.0});  // delta < 5e-4 spent
  EXPECT_DOUBLE_EQ(ctx.RemainingBudget().epsilon, 0.0);
  EXPECT_FALSE(ctx.ChargeRelease("late").ok());
}

TEST(ReleaseContextTest, ZcdpHeadroomIsZeroWhenBudgetCannotFundTheSlack) {
  // A zCDP context whose budget delta is below the conversion's target
  // delta will refuse every release; reporting the untouched budget as
  // headroom would tell remote clients to retry forever.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.5, 1e-6, 1.0}, kTestSeed,
                             AccountingPolicy::kZcdp));
  ctx.SetTotalBudget(PrivacyParams{2.0, 0.0, 1.0}, /*delta_slack=*/1e-9);
  EXPECT_DOUBLE_EQ(ctx.RemainingBudget().epsilon, 0.0);
  ASSERT_OK_AND_ASSIGN(PrivacyLoss loss,
                       PrivacyLoss::GaussianFromParams(ctx.params()));
  EXPECT_FALSE(ctx.ChargeRelease("never-admitted", loss).ok());
}

TEST(ReleaseContextTest, PureBudgetHeadroomIgnoresAdvancedBound) {
  // A pure (delta = 0) budget only ever admits through basic
  // composition, so headroom must come off the basic total even where
  // the (delta-carrying) advanced bound has a smaller epsilon.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.01, 0.0, 1.0}, kTestSeed));
  ctx.SetTotalBudget(PrivacyParams{4.0, 0.0, 1.0});
  for (int i = 0; i < 200; ++i) ASSERT_OK(ctx.ChargeRelease("r"));
  EXPECT_NEAR(ctx.RemainingBudget().epsilon, 2.0, 1e-9);

  // The same ledger under an approximate budget may use the tighter
  // advanced bound for headroom.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext approx,
      ReleaseContext::Create(PrivacyParams{0.01, 0.0, 1.0}, kTestSeed));
  approx.SetTotalBudget(PrivacyParams{4.0, 1e-5, 1.0});
  for (int i = 0; i < 200; ++i) ASSERT_OK(approx.ChargeRelease("r"));
  EXPECT_GT(approx.RemainingBudget().epsilon, 2.0);
}

TEST(ReleaseContextTest, ForkAbsorbEqualsDirectChargesUnderZcdp) {
  // Satellite: shards must merge PrivacyLoss, not (eps, delta) pairs —
  // absorbing zCDP shards composes to exactly the ledger direct charges
  // would have produced (same rho total, same certified epsilon).
  PrivacyParams per_release{0.5, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext parent,
      ReleaseContext::Create(per_release, kTestSeed,
                             AccountingPolicy::kZcdp));
  parent.SetTotalBudget(PrivacyParams{3.0, 1e-4, 1.0},
                        /*delta_slack=*/1e-5);
  ASSERT_OK_AND_ASSIGN(PrivacyLoss loss,
                       PrivacyLoss::GaussianFromParams(per_release));

  constexpr int kShards = 4;
  constexpr int kPerShard = 3;
  std::vector<ReleaseContext> shards;
  shards.reserve(kShards);
  for (int s = 0; s < kShards; ++s) shards.push_back(parent.Fork());
  for (int s = 0; s < kShards; ++s) {
    for (int r = 0; r < kPerShard; ++r) {
      ASSERT_OK(shards[static_cast<size_t>(s)].ChargeRelease(
          StrFormat("shard-%d-release-%d", s, r), loss));
    }
  }
  for (int s = 0; s < kShards; ++s) {
    ASSERT_OK(parent.AbsorbShard(shards[static_cast<size_t>(s)]));
  }

  ASSERT_OK_AND_ASSIGN(
      ReleaseContext direct,
      ReleaseContext::Create(per_release, kTestSeed,
                             AccountingPolicy::kZcdp));
  for (int i = 0; i < kShards * kPerShard; ++i) {
    ASSERT_OK(direct.ChargeRelease("direct", loss));
  }
  EXPECT_EQ(parent.accountant().num_releases(), kShards * kPerShard);
  ASSERT_OK_AND_ASSIGN(double parent_rho, parent.accountant().TotalRho());
  ASSERT_OK_AND_ASSIGN(double direct_rho, direct.accountant().TotalRho());
  EXPECT_DOUBLE_EQ(parent_rho, direct_rho);
  EXPECT_DOUBLE_EQ(parent.accountant().Total(1e-5).epsilon,
                   direct.accountant().Total(1e-5).epsilon);
  // Every absorbed entry kept its zCDP currency.
  for (const AccountantEntry& entry : parent.accountant().entries()) {
    EXPECT_EQ(entry.loss.kind, LossKind::kZcdp);
  }
}

TEST(ReleaseContextTest, ConcurrentAbsorbOrderingComposesIdentically) {
  // Shards built on worker threads finish in arbitrary order; the ledger
  // AbsorbShard produces must not depend on that order. Fork the shards
  // serially (Fork advances the parent's seed stream), charge them on
  // threads, absorb serialized-by-mutex in completion order, and compare
  // against the deterministic sequential composition.
  constexpr int kShards = 8;
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext parent,
      ReleaseContext::Create(PrivacyParams{0.25, 0.0, 1.0}, kTestSeed));
  parent.SetTotalBudget(PrivacyParams{10.0, 0.0, 1.0});
  std::vector<ReleaseContext> shards;
  shards.reserve(kShards);
  for (int s = 0; s < kShards; ++s) shards.push_back(parent.Fork());

  std::mutex absorb_mutex;
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    threads.emplace_back([&, s] {
      ASSERT_OK(shards[static_cast<size_t>(s)].ChargeRelease(
          "shard-" + std::to_string(s)));
      std::lock_guard<std::mutex> lock(absorb_mutex);
      ASSERT_OK(parent.AbsorbShard(shards[static_cast<size_t>(s)]));
    });
  }
  for (std::thread& thread : threads) thread.join();

  ASSERT_OK_AND_ASSIGN(
      ReleaseContext reference,
      ReleaseContext::Create(PrivacyParams{0.25, 0.0, 1.0}, kTestSeed));
  for (int s = 0; s < kShards; ++s) {
    ASSERT_OK(reference.ChargeRelease("shard-" + std::to_string(s)));
  }
  EXPECT_EQ(parent.accountant().num_releases(), kShards);
  EXPECT_DOUBLE_EQ(parent.accountant().BasicTotal().epsilon,
                   reference.accountant().BasicTotal().epsilon);
  EXPECT_DOUBLE_EQ(parent.accountant().BasicTotal().delta,
                   reference.accountant().BasicTotal().delta);
  EXPECT_EQ(parent.telemetry().size(), reference.telemetry().size());
}

}  // namespace
}  // namespace dpsp
