// Tests for the shared release pipeline context: validate-once parameters,
// accountant metering, total-budget enforcement with rollback, and the
// telemetry trail.

#include "dp/release_context.h"

#include <gtest/gtest.h>

#include "common/table.h"
#include "core/tree_distance.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(ReleaseContextTest, ValidatesParamsOnceAtCreation) {
  PrivacyParams bad{/*epsilon=*/-1.0, 0.0, 1.0};
  EXPECT_FALSE(ReleaseContext::Create(bad, kTestSeed).ok());

  PrivacyParams bad_delta{1.0, /*delta=*/1.5, 1.0};
  EXPECT_FALSE(ReleaseContext::Create(bad_delta, kTestSeed).ok());

  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  EXPECT_OK(ctx.params().Validate());
  EXPECT_EQ(ctx.accountant().num_releases(), 0);
  EXPECT_EQ(ctx.last_telemetry(), nullptr);
}

TEST(ReleaseContextTest, ChargeReleaseMetersTheAccountant) {
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.5, 0.0, 1.0}, kTestSeed));
  ASSERT_OK(ctx.ChargeRelease("first"));
  ASSERT_OK(ctx.ChargeRelease("second", 0.25, 0.0));
  EXPECT_EQ(ctx.accountant().num_releases(), 2);
  EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().epsilon, 0.75);
}

TEST(ReleaseContextTest, TotalBudgetBlocksOverspendAndRollsBack) {
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  ctx.SetTotalBudget(PrivacyParams{1.5, 0.0, 1.0});
  ASSERT_OK(ctx.ChargeRelease("fits"));

  Status overspend = ctx.ChargeRelease("does-not-fit");
  EXPECT_FALSE(overspend.ok());
  EXPECT_EQ(overspend.code(), StatusCode::kFailedPrecondition);
  // The rejected charge left the ledger untouched.
  EXPECT_EQ(ctx.accountant().num_releases(), 1);

  // A smaller release still fits.
  ASSERT_OK(ctx.ChargeRelease("small", 0.25, 0.0));
  EXPECT_EQ(ctx.accountant().num_releases(), 2);
}

TEST(ReleaseContextTest, BudgetExhaustionStopsOracleConstruction) {
  Rng unused(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  EdgeWeights w(static_cast<size_t>(g.num_edges()), 1.0);

  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  ctx.SetTotalBudget(PrivacyParams{1.0, 0.0, 1.0});
  ASSERT_OK_AND_ASSIGN(auto first, TreeAllPairsOracle::Build(g, w, ctx));
  (void)first;

  auto second = TreeAllPairsOracle::Build(g, w, ctx);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ctx.accountant().num_releases(), 1);
  EXPECT_EQ(ctx.telemetry().size(), 1u);
}

TEST(ReleaseContextTest, PureBudgetAcceptsBasicCompositionFit) {
  // Regression: once the advanced-composition epsilon drops below the
  // basic total, its delta_slack must not disqualify a pure (delta = 0)
  // budget that the basic total certifiably fits.
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{0.05, 0.0, 1.0}, kTestSeed));
  ctx.SetTotalBudget(PrivacyParams{5.0, 0.0, 1.0}, /*delta_slack=*/1e-9);
  for (int i = 0; i < 96; ++i) {
    ASSERT_OK(ctx.ChargeRelease(StrFormat("refresh-%02d", i)));
  }
  EXPECT_EQ(ctx.accountant().num_releases(), 96);
  EXPECT_NEAR(ctx.accountant().BasicTotal().epsilon, 4.8, 1e-9);
}

TEST(ReleaseContextTest, FailedBuildConsumesNoBudget) {
  // A factory that fails validation must leave the shared ledger and
  // telemetry untouched (CommitRelease runs only after a successful
  // build).
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph cycle,
                       Graph::Create(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  EdgeWeights w(4, 1.0);
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));

  auto not_a_tree = TreeAllPairsOracle::Build(cycle, w, ctx);
  EXPECT_FALSE(not_a_tree.ok());
  EXPECT_EQ(ctx.accountant().num_releases(), 0);
  EXPECT_TRUE(ctx.telemetry().empty());
}

TEST(ReleaseContextTest, TelemetryAccumulatesPerRelease) {
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  ReleaseTelemetry t;
  t.mechanism = "fake";
  t.epsilon = 1.0;
  t.noise_draws = 7;
  ctx.RecordTelemetry(t);
  ASSERT_NE(ctx.last_telemetry(), nullptr);
  EXPECT_EQ(ctx.last_telemetry()->mechanism, "fake");
  EXPECT_EQ(ctx.last_telemetry()->noise_draws, 7);
  EXPECT_NE(ctx.ToString().find("fake"), std::string::npos);
}

TEST(ReleaseContextTest, SeededRngIsDeterministic) {
  ASSERT_OK_AND_ASSIGN(ReleaseContext a,
                       ReleaseContext::Create(PrivacyParams{}, 42));
  ASSERT_OK_AND_ASSIGN(ReleaseContext b,
                       ReleaseContext::Create(PrivacyParams{}, 42));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.rng()->Uniform(), b.rng()->Uniform());
  }
}

}  // namespace
}  // namespace dpsp
