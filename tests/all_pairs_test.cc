#include "graph/all_pairs.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(DistanceMatrixTest, DiagonalZeroOffDiagonalInfinite) {
  DistanceMatrix m(3);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_EQ(m.at(0, 2), kInfiniteDistance);
  m.set(0, 2, 4.5);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 4.5);
}

TEST(AllPairsDijkstraTest, CycleDistances) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(5));
  EdgeWeights w(5, 1.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix m, AllPairsDijkstra(g, w));
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 2.0);  // around the other way
  EXPECT_DOUBLE_EQ(m.at(0, 4), 1.0);
}

TEST(AllPairsDijkstraTest, DisconnectedPairsAreInfinite) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {{0, 1}, {2, 3}}));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix m, AllPairsDijkstra(g, {1.0, 1.0}));
  EXPECT_EQ(m.at(0, 2), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 1.0);
}

TEST(FloydWarshallTest, MatchesDijkstraOnRandomGraphs) {
  Rng rng(kTestSeed);
  for (int trial = 0; trial < 5; ++trial) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(25, 0.2, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 4.0, &rng);
    ASSERT_OK_AND_ASSIGN(DistanceMatrix a, AllPairsDijkstra(g, w));
    ASSERT_OK_AND_ASSIGN(DistanceMatrix b, FloydWarshall(g, w));
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_NEAR(a.at(u, v), b.at(u, v), 1e-9);
      }
    }
  }
}

TEST(FloydWarshallTest, NegativeEdgesOnDag) {
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(3, {{0, 1}, {1, 2}, {0, 2}}, true));
  EdgeWeights w{2.0, -5.0, 0.0};
  ASSERT_OK_AND_ASSIGN(DistanceMatrix m, FloydWarshall(g, w));
  EXPECT_DOUBLE_EQ(m.at(0, 2), -3.0);
}

TEST(FloydWarshallTest, DetectsNegativeCycle) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}, {1, 0}}, true));
  EXPECT_FALSE(FloydWarshall(g, {1.0, -3.0}).ok());
}

TEST(FloydWarshallTest, ParallelEdgesTakeMinimum) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}, {0, 1}}));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix m, FloydWarshall(g, {7.0, 3.0}));
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
}

TEST(MultiSourceDistancesTest, RowsMatchSingleSource) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(4, 4));
  EdgeWeights w = MakeUniformWeights(g, 0.5, 2.0, &rng);
  std::vector<VertexId> sources{3, 7, 11};
  ASSERT_OK_AND_ASSIGN(auto rows, MultiSourceDistances(g, w, sources));
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix m, AllPairsDijkstra(g, w));
  for (size_t i = 0; i < sources.size(); ++i) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(rows[i][static_cast<size_t>(v)], m.at(sources[i], v), 1e-9);
    }
  }
}

}  // namespace
}  // namespace dpsp
