#include "core/bounded_weight.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(AutoCoveringRadiusTest, FormulaRegimes) {
  PrivacyParams pure{1.0, 0.0, 1.0};
  PrivacyParams approx{1.0, 1e-6, 1.0};
  // V = 1000, M = 1: pure k = floor(1000^{2/3}) = 99 (≈100, cube root 1).
  EXPECT_EQ(AutoCoveringRadius(1000, 1.0, pure), 99);
  // approx k = floor(sqrt(1000)) = 31.
  EXPECT_EQ(AutoCoveringRadius(1000, 1.0, approx), 31);
  // Larger M shrinks k.
  EXPECT_LT(AutoCoveringRadius(1000, 100.0, approx),
            AutoCoveringRadius(1000, 1.0, approx));
  // Clamped to [0, V-1].
  EXPECT_LE(AutoCoveringRadius(4, 1e-9, pure), 3);
  EXPECT_GE(AutoCoveringRadius(4, 1e9, approx), 0);
}

TEST(BoundedWeightOracleTest, RejectsWeightsAboveM) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(6));
  BoundedWeightOptions options;
  options.max_weight = 1.0;
  EdgeWeights w(6, 2.0);
  EXPECT_FALSE(BoundedWeightOracle::Build(g, w, options, &rng).ok());
}

TEST(BoundedWeightOracleTest, QueryIsCenterDistance) {
  // With huge epsilon, Distance(u,v) should be ~ d(z(u), z(v)).
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(20));
  EdgeWeights w(19, 1.0);
  BoundedWeightOptions options;
  options.params = PrivacyParams{1e8, 0.0, 1.0};
  options.max_weight = 1.0;
  options.k = 2;
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       BoundedWeightOracle::Build(g, w, options, &rng));
  const Covering& covering = oracle->covering();
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  for (VertexId u = 0; u < 20; u += 3) {
    for (VertexId v = 0; v < 20; v += 4) {
      ASSERT_OK_AND_ASSIGN(double est, oracle->Distance(u, v));
      double center_dist =
          exact.at(covering.CenterOf(u), covering.CenterOf(v));
      EXPECT_NEAR(est, center_dist, 1e-2);
      // Bias bound |d(u,v) - d(z(u), z(v))| <= 2kM.
      EXPECT_LE(std::fabs(exact.at(u, v) - center_dist),
                2.0 * covering.k * options.max_weight + 1e-9);
    }
  }
}

TEST(BoundedWeightOracleTest, SameCenterReturnsZero) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteGraph(8));
  EdgeWeights w(28, 0.5);
  BoundedWeightOptions options;
  options.max_weight = 1.0;
  options.k = 1;
  options.strategy = BoundedWeightOptions::CoveringStrategy::kGreedy;
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       BoundedWeightOracle::Build(g, w, options, &rng));
  // Greedy covering of K_8 with k=1 is a single center.
  EXPECT_EQ(oracle->covering().size(), 1);
  ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(2, 6));
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(BoundedWeightOracleTest, ApproxNoiseScaleBeatsPure) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(10, 10));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  BoundedWeightOptions pure;
  pure.params = PrivacyParams{1.0, 0.0, 1.0};
  pure.max_weight = 1.0;
  pure.k = 3;
  BoundedWeightOptions approx = pure;
  approx.params.delta = 1e-6;
  ASSERT_OK_AND_ASSIGN(auto oracle_pure,
                       BoundedWeightOracle::Build(g, w, pure, &rng));
  ASSERT_OK_AND_ASSIGN(auto oracle_approx,
                       BoundedWeightOracle::Build(g, w, approx, &rng));
  EXPECT_GT(oracle_pure->noise_scale(),
            oracle_approx->noise_scale());
  EXPECT_EQ(oracle_pure->Name(), "bounded-weight(pure)");
  EXPECT_EQ(oracle_approx->Name(), "bounded-weight(approx)");
}

TEST(BoundedWeightOracleTest, ErrorWithinErrorBound) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(8, 8));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  BoundedWeightOptions options;
  options.params = PrivacyParams{1.0, 1e-6, 1.0};
  options.max_weight = 1.0;
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  double gamma = 0.05;
  int violations = 0;
  for (int trial = 0; trial < 5; ++trial) {
    ASSERT_OK_AND_ASSIGN(auto oracle,
                         BoundedWeightOracle::Build(g, w, options, &rng));
    ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                         EvaluateOracleAllPairs(g, exact, *oracle));
    if (report.max_abs_error > oracle->ErrorBound(gamma / 64.0)) ++violations;
  }
  EXPECT_LE(violations, 1);
}

TEST(BoundedWeightOracleTest, GridCoveringTheorem47) {
  Rng rng(kTestSeed);
  int side = 16;
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(side, side));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  // stride ~ V^{1/3} with V = 256: about 6.3; use 6.
  ASSERT_OK_AND_ASSIGN(Covering covering, GridCovering(g, side, side, 6));
  BoundedWeightOptions options;
  options.params = PrivacyParams{1.0, 1e-6, 1.0};
  options.max_weight = 1.0;
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       BoundedWeightOracle::BuildWithCovering(
                           g, w, covering, options, &rng));
  EXPECT_EQ(oracle->covering().size(), 9);  // ceil(16/6)^2
  ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(0, side * side - 1));
  // Sanity: the corner-to-corner distance estimate is in a plausible range.
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  EXPECT_LT(std::fabs(d - exact.at(0, side * side - 1)),
            oracle->ErrorBound(0.001));
}

TEST(BoundedWeightOracleTest, AutoKProducesWorkingOracle) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(60, 0.05, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 2.0, &rng);
  BoundedWeightOptions options;
  options.params = PrivacyParams{1.0, 1e-6, 1.0};
  options.max_weight = 2.0;
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       BoundedWeightOracle::Build(g, w, options, &rng));
  ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(0, 59));
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GE(oracle->covering().k, 1);
}

TEST(BoundedWeightOracleTest, GaussianNoiseOptionWorks) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(8, 8));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  BoundedWeightOptions options;
  options.params = PrivacyParams{0.5, 1e-6, 1.0};
  options.max_weight = 1.0;
  options.k = 2;
  options.noise = BoundedWeightOptions::NoiseKind::kGaussian;
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       BoundedWeightOracle::Build(g, w, options, &rng));
  EXPECT_EQ(oracle->Name(), "bounded-weight-gaussian");
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, *oracle));
  EXPECT_LT(report.max_abs_error, oracle->ErrorBound(0.001));
}

TEST(BoundedWeightOracleTest, GaussianRequiresApproxDp) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(6));
  BoundedWeightOptions options;
  options.params = PrivacyParams{0.5, 0.0, 1.0};
  options.max_weight = 1.0;
  options.k = 1;
  options.noise = BoundedWeightOptions::NoiseKind::kGaussian;
  EXPECT_FALSE(
      BoundedWeightOracle::Build(g, EdgeWeights(6, 0.5), options, &rng).ok());
}

TEST(BoundedWeightOracleTest, DisconnectedGraphRejected) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {{0, 1}, {2, 3}}));
  BoundedWeightOptions options;
  options.max_weight = 1.0;
  EXPECT_FALSE(
      BoundedWeightOracle::Build(g, {1.0, 1.0}, options, &rng).ok());
}

}  // namespace
}  // namespace dpsp
