#include "graph/union_find.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(UnionFindTest, InitiallyAllDisjoint) {
  UnionFind dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dsu.Find(i), i);
    EXPECT_EQ(dsu.SetSize(i), 1);
  }
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind dsu(4);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_TRUE(dsu.Connected(0, 1));
  EXPECT_FALSE(dsu.Connected(0, 2));
  EXPECT_EQ(dsu.num_sets(), 3);
  EXPECT_EQ(dsu.SetSize(1), 2);
}

TEST(UnionFindTest, UnionOfSameSetReturnsFalse) {
  UnionFind dsu(3);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_FALSE(dsu.Union(1, 0));
  EXPECT_EQ(dsu.num_sets(), 2);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind dsu(5);
  dsu.Union(0, 1);
  dsu.Union(1, 2);
  dsu.Union(3, 4);
  EXPECT_TRUE(dsu.Connected(0, 2));
  EXPECT_TRUE(dsu.Connected(3, 4));
  EXPECT_FALSE(dsu.Connected(2, 3));
  EXPECT_EQ(dsu.SetSize(0), 3);
}

TEST(UnionFindTest, RandomizedAgainstNaiveLabels) {
  // Compare against a brute-force labelling under random unions.
  const int n = 60;
  UnionFind dsu(n);
  std::vector<int> label(n);
  for (int i = 0; i < n; ++i) label[static_cast<size_t>(i)] = i;
  Rng rng(kTestSeed);
  for (int step = 0; step < 200; ++step) {
    int a = static_cast<int>(rng.UniformInt(0, n - 1));
    int b = static_cast<int>(rng.UniformInt(0, n - 1));
    if (a == b) continue;
    dsu.Union(a, b);
    int la = label[static_cast<size_t>(a)];
    int lb = label[static_cast<size_t>(b)];
    if (la != lb) {
      for (int& l : label) {
        if (l == lb) l = la;
      }
    }
    // Spot-check equivalence of the two structures.
    for (int i = 0; i < n; i += 7) {
      for (int j = i + 1; j < n; j += 11) {
        EXPECT_EQ(dsu.Connected(i, j), label[static_cast<size_t>(i)] ==
                                           label[static_cast<size_t>(j)]);
      }
    }
  }
}

}  // namespace
}  // namespace dpsp
