#include "core/reconstruction.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(ReconstructionLowerBoundTest, Formula) {
  // alpha = n (1 - (1+e^eps) delta) / (1 + e^{2eps}).
  double eps = 1.0, delta = 0.01;
  double expected = 100.0 * (1.0 - (1.0 + std::exp(1.0)) * 0.01) /
                    (1.0 + std::exp(2.0));
  EXPECT_NEAR(ReconstructionLowerBound(100, eps, delta), expected, 1e-12);
  // Small eps, delta = 0: approaches n/2 ("0.49 (V-1)" in Theorem 5.1).
  EXPECT_GT(ReconstructionLowerBound(100, 0.01, 0.0), 49.0);
  EXPECT_LE(ReconstructionLowerBound(100, 0.01, 0.0), 50.0);
}

TEST(DecodePathBitsTest, DecodesCleanPath) {
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeShortestPathGadget(3));
  // Path using e_0^(1), e_1^(0), e_2^(1): edge ids 1, 2, 5.
  ASSERT_OK_AND_ASSIGN(std::vector<int> bits,
                       DecodePathBits(gadget, {1, 2, 5}));
  EXPECT_EQ(bits, (std::vector<int>{1, 0, 1}));
}

TEST(DecodePathBitsTest, RejectsMalformedPaths) {
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeShortestPathGadget(3));
  EXPECT_FALSE(DecodePathBits(gadget, {1, 2}).ok());        // too short
  EXPECT_FALSE(DecodePathBits(gadget, {0, 1, 4}).ok());     // position twice
  EXPECT_FALSE(DecodePathBits(gadget, {0, 2, 99}).ok());    // bad id
}

TEST(DecodeTreeBitsTest, DecodesStarTree) {
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeMstGadget(4));
  ASSERT_OK_AND_ASSIGN(std::vector<int> bits,
                       DecodeTreeBits(gadget, {0, 3, 4, 7}));
  EXPECT_EQ(bits, (std::vector<int>{0, 1, 0, 1}));
}

TEST(DecodeMatchingBitsTest, DecodesPerGadgetChoice) {
  ASSERT_OK_AND_ASSIGN(HourglassGadgetGraph gadget, MakeMatchingGadget(2));
  // Gadget 0: (0,1)-(1,0) matched => edge EdgeFor(0,1,0)=2 => bit 0.
  //           partner edge (0,0)-(1,1): EdgeFor(0,0,1)=1.
  // Gadget 1: (0,1)-(1,1) matched => EdgeFor(1,1,1)=7 => bit 1.
  //           partner edge (0,0)-(1,0): EdgeFor(1,0,0)=4.
  ASSERT_OK_AND_ASSIGN(std::vector<int> bits,
                       DecodeMatchingBits(gadget, {2, 1, 7, 4}));
  EXPECT_EQ(bits, (std::vector<int>{0, 1}));
}

TEST(AttackShortestPathTest, HighEpsilonReconstructsPerfectly) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeShortestPathGadget(30));
  std::vector<int> x(30);
  for (int& b : x) b = rng.Bernoulli(0.5) ? 1 : 0;
  PrivacyParams params{1e6, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(AttackOutcome outcome,
                       AttackShortestPath(gadget, x, params, 0.05, &rng));
  EXPECT_EQ(outcome.hamming_distance, 0);
  EXPECT_DOUBLE_EQ(outcome.object_error, 0.0);
}

TEST(AttackShortestPathTest, HammingEqualsObjectErrorOnGadget) {
  // On this gadget every decoded disagreement contributes exactly one unit
  // of path weight.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeShortestPathGadget(40));
  std::vector<int> x(40);
  for (int& b : x) b = rng.Bernoulli(0.5) ? 1 : 0;
  PrivacyParams params{1.0, 0.0, 1.0};
  for (int trial = 0; trial < 5; ++trial) {
    ASSERT_OK_AND_ASSIGN(AttackOutcome outcome,
                         AttackShortestPath(gadget, x, params, 0.05, &rng));
    EXPECT_DOUBLE_EQ(outcome.object_error,
                     static_cast<double>(outcome.hamming_distance));
  }
}

TEST(RunReconstructionExperimentTest, ShortestPathReportSane) {
  Rng rng(kTestSeed);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(
      AttackReport report,
      RunReconstructionExperiment(AttackKind::kShortestPath, 50, params, 20,
                                  &rng));
  EXPECT_EQ(report.n, 50);
  EXPECT_EQ(report.trials, 20);
  // Theorem 5.1: expected error >= alpha. (Statistical slack 0.7.)
  EXPECT_GE(report.mean_object_error, report.alpha * 0.7);
  // Randomized response at the same eps flips n/(1+e) ~ 13.4 bits; the
  // attack on Algorithm 3 cannot beat the RR optimum by Lemma 5.3 (slack
  // for sampling noise).
  EXPECT_GE(report.mean_hamming,
            report.randomized_response_expectation * 0.5);
  EXPECT_LE(report.mean_hamming, 50.0);
}

TEST(RunReconstructionExperimentTest, MstAndMatchingReports) {
  Rng rng(kTestSeed);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(AttackReport mst,
                       RunReconstructionExperiment(AttackKind::kMst, 40,
                                                   params, 15, &rng));
  EXPECT_GE(mst.mean_object_error, mst.alpha * 0.6);
  ASSERT_OK_AND_ASSIGN(AttackReport matching,
                       RunReconstructionExperiment(AttackKind::kMatching, 40,
                                                   params, 15, &rng));
  EXPECT_GE(matching.mean_object_error,
            ReconstructionLowerBound(40, 1.0, 0.0) * 0.6);
}

TEST(RunReconstructionExperimentTest, LargerEpsilonReconstructsBetter) {
  Rng rng(kTestSeed);
  PrivacyParams tight{0.2, 0.0, 1.0};
  PrivacyParams loose{4.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(
      AttackReport rt,
      RunReconstructionExperiment(AttackKind::kShortestPath, 60, tight, 15,
                                  &rng));
  ASSERT_OK_AND_ASSIGN(
      AttackReport rl,
      RunReconstructionExperiment(AttackKind::kShortestPath, 60, loose, 15,
                                  &rng));
  EXPECT_LT(rl.mean_hamming, rt.mean_hamming);
}

TEST(RunReconstructionExperimentTest, InvalidArguments) {
  Rng rng(kTestSeed);
  PrivacyParams params;
  EXPECT_FALSE(RunReconstructionExperiment(AttackKind::kMst, 0, params, 5,
                                           &rng)
                   .ok());
  EXPECT_FALSE(RunReconstructionExperiment(AttackKind::kMst, 5, params, 0,
                                           &rng)
                   .ok());
}

}  // namespace
}  // namespace dpsp
