// Client reliability knobs: per-request deadlines against a stalled
// server (timeout breaks the connection — a late response would
// desynchronize the framing), and the kOverloaded-only retry policy
// (backpressure is explicitly safe to repeat; budget exhaustion and
// unknown-fate transport errors never are).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(ClientRetryTest, StalledServerTimesOutAndBreaksTheConnection) {
  ASSERT_OK_AND_ASSIGN(net::Listener listener,
                       net::Listener::Bind("127.0.0.1", 0));
  std::atomic<bool> release_server{false};
  std::thread stalled([&listener, &release_server] {
    Result<net::Socket> accepted = listener.Accept(/*timeout_ms=*/5000);
    if (!accepted.ok()) return;
    // Hold the connection open, read nothing, answer nothing.
    while (!release_server.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  net::ClientOptions options;
  options.request_timeout_ms = 100;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", listener.port(),
                                            options));
  Result<net::ServerStats> stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(client.broken());

  // Every later call fails fast: the stream may hold a stale response.
  Result<net::ServerStats> after = client.Stats();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.retries_performed(), 0u);  // timeouts are never retried

  release_server.store(true);
  stalled.join();
}

TEST(ClientRetryTest, OverloadedIsRetriedUntilTheServerRecovers) {
  // A hand-rolled server: the first request is refused kOverloaded, the
  // retry gets a real answer — the exact transient the policy exists for.
  ASSERT_OK_AND_ASSIGN(net::Listener listener,
                       net::Listener::Bind("127.0.0.1", 0));
  std::thread flaky([&listener] {
    Result<net::Socket> accepted = listener.Accept(/*timeout_ms=*/5000);
    if (!accepted.ok()) return;
    net::Socket socket = std::move(accepted).value();
    Result<net::Frame> first = net::ReadFrame(socket);
    if (!first.ok()) return;
    std::vector<uint8_t> error = net::EncodeError(
        net::ErrorKind::kOverloaded,
        Status::Unavailable("queue full, retry later"));
    (void)net::WriteFrame(socket, net::MessageType::kError, error,
                          first->version);
    Result<net::Frame> retry = net::ReadFrame(socket);
    if (!retry.ok()) return;
    net::ServerStats stats;
    stats.queries_served = 7;
    (void)net::WriteFrame(socket, net::MessageType::kStatsResponse,
                          net::EncodeServerStats(stats, retry->version),
                          retry->version);
  });

  net::ClientOptions options;
  options.max_retries = 3;
  options.initial_backoff_ms = 1;
  options.max_backoff_ms = 4;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", listener.port(),
                                            options));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  EXPECT_EQ(stats.queries_served, 7u);
  EXPECT_EQ(client.retries_performed(), 1u);
  EXPECT_FALSE(client.last_error().has_value());  // success resets it
  flaky.join();
}

TEST(ClientRetryTest, RetriesAreCappedAndSurfaceTheOverload) {
  // Drain mode sheds every query: the client must exhaust its retries
  // and surface the server's kUnavailable, counting each attempt.
  net::QueryServerOptions options;
  options.max_inflight_queries = -1;  // lame duck: shed all queries
  ReleaseContext ctx =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  net::QueryServer server(options, std::move(ctx));
  Rng rng(kTestSeed);
  Graph graph = MakePathGraph(16).value();
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK(server.AddWorkload("path", graph, weights));
  ASSERT_OK(server.Start());

  net::ClientOptions client_options;
  client_options.max_retries = 2;
  client_options.initial_backoff_ms = 1;
  client_options.max_backoff_ms = 2;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server.port(),
                                            client_options));
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "h0"));
  std::vector<VertexPair> pairs = {{0, 5}};
  Result<std::vector<double>> shed = client.Query(info.handle_id, pairs);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retries_performed(), 2u);
  ASSERT_TRUE(client.last_error().has_value());
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kOverloaded);
}

TEST(ClientRetryTest, BudgetExhaustionIsNeverRetried) {
  net::QueryServerOptions options;
  ReleaseContext ctx =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  ctx.SetTotalBudget({1.5, 0.0, 1.0});  // room for exactly one release
  net::QueryServer server(options, std::move(ctx));
  Rng rng(kTestSeed);
  Graph graph = MakePathGraph(16).value();
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK(server.AddWorkload("path", graph, weights));
  ASSERT_OK(server.Start());

  net::ClientOptions client_options;
  client_options.max_retries = 5;  // must not matter
  client_options.initial_backoff_ms = 1;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server.port(),
                                            client_options));
  ASSERT_OK(client.Release("path", "tree-hld", "h0").status());
  Result<net::ReleaseInfo> refused =
      client.Release("path", "tree-hld", "h1");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // Terminal: no retry can ever succeed, so none may have been burned.
  EXPECT_EQ(client.retries_performed(), 0u);
  ASSERT_TRUE(client.last_error().has_value());
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kBudgetExhausted);
}

TEST(ClientRetryTest, IdleConnectionsAreClosedByTheServer) {
  net::QueryServerOptions options;
  options.idle_timeout_ms = 100;
  ReleaseContext ctx =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  net::QueryServer server(options, std::move(ctx));
  Rng rng(kTestSeed);
  Graph graph = MakePathGraph(16).value();
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK(server.AddWorkload("path", graph, weights));
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK(client.Stats().status());  // active: well within the window
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // The server hung up during the idle window; the next request hits a
  // dead stream instead of waiting forever on an abandoned slot.
  Result<net::ServerStats> after_idle = client.Stats();
  EXPECT_FALSE(after_idle.ok());
}

}  // namespace
}  // namespace dpsp
