// Client reliability knobs: per-request deadlines against a stalled
// server (timeout breaks the connection — a late response would
// desynchronize the framing), the kOverloaded-only retry policy
// (backpressure is explicitly safe to repeat; budget exhaustion and
// unknown-fate transport errors never are), and retry-with-failover
// across a replica endpoint list (reads may move to another node;
// typed budget refusals never do — every replica would refuse the same
// way, and masking the answer would hide an admission decision).

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(ClientRetryTest, StalledServerTimesOutAndBreaksTheConnection) {
  ASSERT_OK_AND_ASSIGN(net::Listener listener,
                       net::Listener::Bind("127.0.0.1", 0));
  std::atomic<bool> release_server{false};
  std::thread stalled([&listener, &release_server] {
    Result<net::Socket> accepted = listener.Accept(/*timeout_ms=*/5000);
    if (!accepted.ok()) return;
    // Hold the connection open, read nothing, answer nothing.
    while (!release_server.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  net::ClientOptions options;
  options.request_timeout_ms = 100;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", listener.port(),
                                            options));
  Result<net::ServerStats> stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(client.broken());

  // Every later call fails fast: the stream may hold a stale response.
  Result<net::ServerStats> after = client.Stats();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.retries_performed(), 0u);  // timeouts are never retried

  release_server.store(true);
  stalled.join();
}

TEST(ClientRetryTest, OverloadedIsRetriedUntilTheServerRecovers) {
  // A hand-rolled server: the first request is refused kOverloaded, the
  // retry gets a real answer — the exact transient the policy exists for.
  ASSERT_OK_AND_ASSIGN(net::Listener listener,
                       net::Listener::Bind("127.0.0.1", 0));
  std::thread flaky([&listener] {
    Result<net::Socket> accepted = listener.Accept(/*timeout_ms=*/5000);
    if (!accepted.ok()) return;
    net::Socket socket = std::move(accepted).value();
    Result<net::Frame> first = net::ReadFrame(socket);
    if (!first.ok()) return;
    std::vector<uint8_t> error = net::EncodeError(
        net::ErrorKind::kOverloaded,
        Status::Unavailable("queue full, retry later"));
    (void)net::WriteFrame(socket, net::MessageType::kError, error,
                          first->version);
    Result<net::Frame> retry = net::ReadFrame(socket);
    if (!retry.ok()) return;
    net::ServerStats stats;
    stats.queries_served = 7;
    (void)net::WriteFrame(socket, net::MessageType::kStatsResponse,
                          net::EncodeServerStats(stats, retry->version),
                          retry->version);
  });

  net::ClientOptions options;
  options.max_retries = 3;
  options.initial_backoff_ms = 1;
  options.max_backoff_ms = 4;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", listener.port(),
                                            options));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  EXPECT_EQ(stats.queries_served, 7u);
  EXPECT_EQ(client.retries_performed(), 1u);
  EXPECT_FALSE(client.last_error().has_value());  // success resets it
  flaky.join();
}

TEST(ClientRetryTest, RetriesAreCappedAndSurfaceTheOverload) {
  // Drain mode sheds every query: the client must exhaust its retries
  // and surface the server's kUnavailable, counting each attempt.
  net::QueryServerOptions options;
  options.max_inflight_queries = -1;  // lame duck: shed all queries
  ReleaseContext ctx =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  net::QueryServer server(options, std::move(ctx));
  Rng rng(kTestSeed);
  Graph graph = MakePathGraph(16).value();
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK(server.AddWorkload("path", graph, weights));
  ASSERT_OK(server.Start());

  net::ClientOptions client_options;
  client_options.max_retries = 2;
  client_options.initial_backoff_ms = 1;
  client_options.max_backoff_ms = 2;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server.port(),
                                            client_options));
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "h0"));
  std::vector<VertexPair> pairs = {{0, 5}};
  Result<std::vector<double>> shed = client.Query(info.handle_id, pairs);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retries_performed(), 2u);
  ASSERT_TRUE(client.last_error().has_value());
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kOverloaded);
}

TEST(ClientRetryTest, BudgetExhaustionIsNeverRetried) {
  net::QueryServerOptions options;
  ReleaseContext ctx =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  ctx.SetTotalBudget({1.5, 0.0, 1.0});  // room for exactly one release
  net::QueryServer server(options, std::move(ctx));
  Rng rng(kTestSeed);
  Graph graph = MakePathGraph(16).value();
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK(server.AddWorkload("path", graph, weights));
  ASSERT_OK(server.Start());

  net::ClientOptions client_options;
  client_options.max_retries = 5;  // must not matter
  client_options.initial_backoff_ms = 1;
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server.port(),
                                            client_options));
  ASSERT_OK(client.Release("path", "tree-hld", "h0").status());
  Result<net::ReleaseInfo> refused =
      client.Release("path", "tree-hld", "h1");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // Terminal: no retry can ever succeed, so none may have been burned.
  EXPECT_EQ(client.retries_performed(), 0u);
  ASSERT_TRUE(client.last_error().has_value());
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kBudgetExhausted);
}

// ----------------------------------------------------------- failover --

/// A server pair over the same workload for failover tests: a primary we
/// can sabotage and a healthy secondary.
struct FailoverPair {
  std::unique_ptr<net::QueryServer> primary;
  std::unique_ptr<net::QueryServer> secondary;

  explicit FailoverPair(net::QueryServerOptions primary_options = {}) {
    Rng rng(kTestSeed);
    Graph graph = MakePathGraph(16).value();
    EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
    ReleaseContext ctx1 =
        ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
    primary = std::make_unique<net::QueryServer>(primary_options,
                                                 std::move(ctx1));
    EXPECT_OK(primary->AddWorkload("path", graph, weights));
    EXPECT_OK(primary->Start());
    ReleaseContext ctx2 =
        ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
    secondary = std::make_unique<net::QueryServer>(net::QueryServerOptions{},
                                                   std::move(ctx2));
    EXPECT_OK(secondary->AddWorkload("path", graph, weights));
    EXPECT_OK(secondary->Start());
  }
};

TEST(ClientRetryTest, ReadsFailOverToTheNextEndpointWhenThePrimaryDies) {
  FailoverPair pair;
  net::ClientOptions options;
  options.max_retries = 1;
  options.initial_backoff_ms = 1;
  options.failover_endpoints.push_back(
      net::Endpoint{"127.0.0.1", pair.secondary->port()});
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1",
                                            pair.primary->port(), options));
  ASSERT_OK(client.Stats().status());

  // Primary gone mid-conversation: the next read lands on the secondary
  // through the failover list instead of failing.
  pair.primary->Stop();
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  EXPECT_EQ(stats.queries_served, 0u);
  EXPECT_GE(client.failovers_performed(), 1u);
  EXPECT_FALSE(client.broken());

  // And it stays on the healthy endpoint for subsequent reads.
  ASSERT_OK(client.Stats().status());
}

TEST(ClientRetryTest, BrokenConnectionRecoversThroughFailoverForReads) {
  // After a request timeout the connection is broken; a read-only client
  // with a failover list must recover instead of failing fast forever.
  ASSERT_OK_AND_ASSIGN(net::Listener listener,
                       net::Listener::Bind("127.0.0.1", 0));
  std::atomic<bool> release_server{false};
  std::thread stalled([&listener, &release_server] {
    Result<net::Socket> accepted = listener.Accept(/*timeout_ms=*/5000);
    if (!accepted.ok()) return;
    while (!release_server.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  FailoverPair pair;
  net::ClientOptions options;
  options.request_timeout_ms = 100;
  options.failover_endpoints.push_back(
      net::Endpoint{"127.0.0.1", pair.secondary->port()});
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", listener.port(),
                                            options));
  // The stalled primary times the request out, then the attempt moves to
  // the secondary and succeeds — one round trip, observable failover.
  ASSERT_OK(client.Stats().status());
  EXPECT_GE(client.failovers_performed(), 1u);
  release_server.store(true);
  stalled.join();
}

TEST(ClientRetryTest, BudgetRefusalsNeverFailOver) {
  // The primary has room for exactly one release; the secondary is
  // wide open. The refused second release must surface kBudgetExhausted
  // from the PRIMARY — silently re-running a mutation on another node
  // would both double-spend and hide the admission decision.
  Rng rng(kTestSeed);
  Graph graph = MakePathGraph(16).value();
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ReleaseContext ctx1 =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  ctx1.SetTotalBudget({1.5, 0.0, 1.0});
  net::QueryServer primary(net::QueryServerOptions{}, std::move(ctx1));
  ASSERT_OK(primary.AddWorkload("path", graph, weights));
  ASSERT_OK(primary.Start());
  ReleaseContext ctx2 =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  net::QueryServer secondary(net::QueryServerOptions{}, std::move(ctx2));
  ASSERT_OK(secondary.AddWorkload("path", graph, weights));
  ASSERT_OK(secondary.Start());

  net::ClientOptions options;
  options.max_retries = 5;
  options.initial_backoff_ms = 1;
  options.failover_endpoints.push_back(
      net::Endpoint{"127.0.0.1", secondary.port()});
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", primary.port(),
                                            options));
  ASSERT_OK(client.Release("path", "tree-hld", "h0").status());
  Result<net::ReleaseInfo> refused =
      client.Release("path", "tree-hld", "h1");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(client.last_error().has_value());
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kBudgetExhausted);
  EXPECT_EQ(client.failovers_performed(), 0u);
  EXPECT_EQ(client.retries_performed(), 0u);
  // The secondary never heard about any of this.
  ASSERT_OK_AND_ASSIGN(net::Client probe,
                       net::Client::Connect("127.0.0.1",
                                            secondary.port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, probe.Stats());
  EXPECT_EQ(stats.open_handles, 0u);
}

TEST(ClientRetryTest, TransportFailuresDoNotFailOverMutations) {
  // A release whose connection dies mid-flight has unknown fate: it may
  // or may not have charged the primary's ledger. Re-sending it to a
  // different node could spend twice — the client must surface the
  // transport error instead of failing over.
  FailoverPair pair;
  net::ClientOptions options;
  options.failover_endpoints.push_back(
      net::Endpoint{"127.0.0.1", pair.secondary->port()});
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1",
                                            pair.primary->port(), options));
  ASSERT_OK(client.Stats().status());
  pair.primary->Stop();
  Result<net::ReleaseInfo> released =
      client.Release("path", "tree-hld", "h0");
  ASSERT_FALSE(released.ok());
  EXPECT_EQ(client.failovers_performed(), 0u);
  // The healthy secondary must not have gained a handle.
  ASSERT_OK_AND_ASSIGN(net::Client probe,
                       net::Client::Connect("127.0.0.1",
                                            pair.secondary->port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, probe.Stats());
  EXPECT_EQ(stats.open_handles, 0u);
}

TEST(ClientRetryTest, IdleConnectionsAreClosedByTheServer) {
  net::QueryServerOptions options;
  options.idle_timeout_ms = 100;
  ReleaseContext ctx =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  net::QueryServer server(options, std::move(ctx));
  Rng rng(kTestSeed);
  Graph graph = MakePathGraph(16).value();
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK(server.AddWorkload("path", graph, weights));
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK(client.Stats().status());  // active: well within the window
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // The server hung up during the idle window; the next request hits a
  // dead stream instead of waiting forever on an abandoned slot.
  Result<net::ServerStats> after_idle = client.Stats();
  EXPECT_FALSE(after_idle.ok());
}

}  // namespace
}  // namespace dpsp
