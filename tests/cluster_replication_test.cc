// Tests for the replicated read tier: coordinator/replica bit-identity
// across every registered mechanism, delta-only update epochs (byte
// accounting), late-joiner catch-up, a SIGKILLed-mid-install replica
// resubscribing cleanly, and budget charged exactly once on the
// coordinator no matter how many replicas serve.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/replica.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/oracle_registry.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "test_util.h"

namespace dpsp {
namespace {

constexpr int kNumVertices = 64;  // even path: satisfies every input family
constexpr uint64_t kClusterSeed = kTestSeed ^ 0xc1u;
// eps < 1 with delta > 0: buildable by Laplace- AND Gaussian-calibrated
// mechanisms, so the whole registry participates.
const PrivacyParams kParams{0.5, 1e-6, 1.0};

struct Workload {
  Graph graph;
  EdgeWeights weights;
};

Workload MakeWorkload() {
  Rng rng(kTestSeed);
  Graph g = MakePathGraph(kNumVertices).value();
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  return {std::move(g), std::move(w)};
}

std::vector<VertexPair> SamplePairs(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    pairs.emplace_back(
        static_cast<VertexId>(rng.UniformInt(0, kNumVertices - 1)),
        static_cast<VertexId>(rng.UniformInt(0, kNumVertices - 1)));
  }
  return pairs;
}

/// One read replica: a ledger-less QueryServer plus the sync loop feeding
/// its handle table from the coordinator.
struct ReplicaNode {
  std::unique_ptr<net::QueryServer> server;
  std::unique_ptr<cluster::Replica> replica;
};

/// A coordinator (budget-holding server + replication listener) and
/// helpers to attach replicas against the same workload.
class ClusterFixture {
 public:
  explicit ClusterFixture(double compaction_factor = 1e9)
      : workload_(MakeWorkload()) {
    ReleaseContext ctx =
        ReleaseContext::Create(kParams, kClusterSeed).value();
    ctx.SetTotalBudget(PrivacyParams{1e9, 0.5, 1.0});
    server_ = std::make_unique<net::QueryServer>(net::QueryServerOptions{},
                                                 std::move(ctx));
    EXPECT_OK(server_->AddWorkload("path", workload_.graph,
                                   workload_.weights));
    EXPECT_OK(server_->Start());
    cluster::CoordinatorOptions options;
    // A huge factor by default: tests that assert on the delta log's
    // replay behavior must not race an implicit compaction.
    options.compaction_factor = compaction_factor;
    coordinator_ =
        std::make_unique<cluster::Coordinator>(options, server_.get());
    EXPECT_OK(coordinator_->Start());
  }

  ~ClusterFixture() {
    for (ReplicaNode& node : replicas_) node.replica->Stop();
    coordinator_->Stop();
    server_->Stop();
  }

  ReplicaNode& AddReplica(const std::string& name) {
    ReplicaNode node;
    node.server =
        std::make_unique<net::QueryServer>(net::QueryServerOptions{});
    EXPECT_OK(node.server->AddWorkload("path", workload_.graph,
                                       workload_.weights));
    EXPECT_OK(node.server->Start());
    cluster::ReplicaOptions options;
    options.coordinator_port = coordinator_->replication_port();
    options.name = name;
    node.replica =
        std::make_unique<cluster::Replica>(options, node.server.get());
    EXPECT_OK(node.replica->Start());
    replicas_.push_back(std::move(node));
    return replicas_.back();
  }

  /// Blocks until every replica has applied the coordinator's LSN.
  void AwaitConvergence(int timeout_ms = 20000) {
    const uint64_t target = server_->last_epoch_lsn();
    for (ReplicaNode& node : replicas_) {
      ASSERT_OK(node.replica->WaitForLsn(target, timeout_ms));
    }
  }

  net::Client ConnectTo(const net::QueryServer& server) {
    return net::Client::Connect("127.0.0.1", server.port()).value();
  }

  net::QueryServer& server() { return *server_; }
  cluster::Coordinator& coordinator() { return *coordinator_; }
  std::vector<ReplicaNode>& replicas() { return replicas_; }
  const Workload& workload() const { return workload_; }

 private:
  Workload workload_;
  std::unique_ptr<net::QueryServer> server_;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::vector<ReplicaNode> replicas_;
};

/// Queries the same batch on the coordinator and every replica and
/// asserts bit-identical answers.
void ExpectBitIdentical(ClusterFixture& fixture, uint32_t handle_id,
                        uint64_t pair_seed, const std::string& what) {
  std::vector<VertexPair> pairs = SamplePairs(300, pair_seed);
  net::Client coordinator_client = fixture.ConnectTo(fixture.server());
  ASSERT_OK_AND_ASSIGN(std::vector<double> reference,
                       coordinator_client.Query(handle_id, pairs));
  for (size_t r = 0; r < fixture.replicas().size(); ++r) {
    net::Client replica_client =
        fixture.ConnectTo(*fixture.replicas()[r].server);
    ASSERT_OK_AND_ASSIGN(std::vector<double> served,
                         replica_client.Query(handle_id, pairs));
    ASSERT_EQ(served.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      // Bit-exact, not approximate: the replica re-hosts the released
      // bytes, it does not re-run the mechanism.
      ASSERT_EQ(served[i], reference[i])
          << what << ": replica " << r << " diverges at pair " << i;
    }
  }
}

// ------------------------------------------------------ bit identity --

TEST(ClusterReplicationTest, EveryMechanismServesBitIdenticalOnReplicas) {
  ClusterFixture fixture;
  fixture.AddReplica("r1");
  fixture.AddReplica("r2");

  net::Client client = fixture.ConnectTo(fixture.server());
  std::vector<std::string> mechanisms =
      OracleRegistry::Global().NamesForInput(OracleInput::kPath,
                                             /*has_perfect_matching=*/true);
  ASSERT_FALSE(mechanisms.empty());
  std::vector<std::pair<std::string, uint32_t>> released;
  for (const std::string& mechanism : mechanisms) {
    ASSERT_OK_AND_ASSIGN(
        net::ReleaseInfo info,
        client.Release("path", mechanism, "handle-" + mechanism));
    released.emplace_back(mechanism, info.handle_id);
  }
  fixture.AwaitConvergence();

  uint64_t seed = kTestSeed ^ 0xb17;
  for (const auto& [mechanism, handle_id] : released) {
    ExpectBitIdentical(fixture, handle_id, seed++, mechanism);
  }
  // Both replicas hold the full handle table.
  for (ReplicaNode& node : fixture.replicas()) {
    EXPECT_EQ(node.server->stats().open_handles, released.size());
  }
}

// ------------------------------------------------- delta-only epochs --

TEST(ClusterReplicationTest, UpdateEpochsShipDeltasNotFullImages) {
  ClusterFixture fixture;
  fixture.AddReplica("r1");
  fixture.AddReplica("r2");

  net::Client client = fixture.ConnectTo(fixture.server());
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "live"));
  fixture.AwaitConvergence();
  cluster::ShipStats after_release = fixture.coordinator().ship_stats();
  EXPECT_EQ(after_release.full_frames, 1u);
  EXPECT_EQ(after_release.delta_frames, 0u);
  ASSERT_GT(after_release.full_bytes, 0u);

  constexpr int kEpochs = 3;
  Rng rng(kTestSeed ^ 0xeb0c);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<EdgeWeightDelta> deltas = {
        {static_cast<EdgeId>(rng.UniformInt(0, kNumVertices - 2)),
         rng.Uniform(0.1, 0.9)}};
    ASSERT_OK(client.UpdateWeights(info.handle_id, deltas).status());
  }
  fixture.AwaitConvergence();

  cluster::ShipStats after_epochs = fixture.coordinator().ship_stats();
  // Byte accounting: the epochs traveled as deltas only — no further
  // full image crossed the wire, and the deltas together moved fewer
  // bytes than the one full image did.
  EXPECT_EQ(after_epochs.full_frames, after_release.full_frames);
  EXPECT_EQ(after_epochs.delta_frames,
            after_release.delta_frames + kEpochs);
  EXPECT_LT(after_epochs.delta_bytes, after_epochs.full_bytes);
  for (ReplicaNode& node : fixture.replicas()) {
    EXPECT_GE(node.replica->deltas_applied(),
              static_cast<uint64_t>(kEpochs));
  }
  ExpectBitIdentical(fixture, info.handle_id, kTestSeed ^ 0xde17a,
                     "post-epoch tree-hld");
}

// ---------------------------------------------------- late joiners --

TEST(ClusterReplicationTest, LateJoinerCatchesUpThroughDeltaReplay) {
  ClusterFixture fixture;
  net::Client client = fixture.ConnectTo(fixture.server());
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "live"));
  constexpr int kEpochs = 4;
  Rng rng(kTestSeed ^ 0x1a7e);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<EdgeWeightDelta> deltas = {
        {static_cast<EdgeId>(rng.UniformInt(0, kNumVertices - 2)),
         rng.Uniform(0.1, 0.9)}};
    ASSERT_OK(client.UpdateWeights(info.handle_id, deltas).status());
  }

  // The replica joins AFTER the release and all four epochs: catch-up
  // must replay the base chunk plus the logged deltas, not one frame per
  // live broadcast (there were none for this subscriber).
  ReplicaNode& joiner = fixture.AddReplica("late");
  fixture.AwaitConvergence();
  EXPECT_EQ(joiner.replica->full_installs(), 1u);
  EXPECT_GE(joiner.replica->deltas_applied(),
            static_cast<uint64_t>(kEpochs));
  EXPECT_GE(joiner.replica->coordinator_lsn(),
            static_cast<uint64_t>(1 + kEpochs));
  ExpectBitIdentical(fixture, info.handle_id, kTestSeed ^ 0x10af,
                     "late joiner");
}

// ------------------------------------------------ failure injection --

TEST(ClusterReplicationTest, InstallFailureForcesACleanResync) {
  ClusterFixture fixture;
  net::Client client = fixture.ConnectTo(fixture.server());
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "live"));
  ReplicaNode& node = fixture.AddReplica("r1");
  fixture.AwaitConvergence();

  // Arm the delta-install site: the next epoch's install fails, the
  // replica must reset to LSN 0, resubscribe, and converge through a
  // fresh full resync — serving never stops.
  SetFailpoint(failpoints::kClusterInstallDelta, FailpointAction::kError);
  std::vector<EdgeWeightDelta> deltas = {{7, 0.42}};
  ASSERT_OK(client.UpdateWeights(info.handle_id, deltas).status());
  // Wait for the failure to be observed, then disarm so the retry lands.
  for (int i = 0; i < 500 && node.replica->resyncs() == 0; ++i) {
    usleep(10000);
  }
  ClearFailpoint(failpoints::kClusterInstallDelta);
  EXPECT_GE(node.replica->resyncs(), 1u);
  fixture.AwaitConvergence();
  ExpectBitIdentical(fixture, info.handle_id, kTestSeed ^ 0xf41,
                     "post-resync");
}

TEST(ClusterReplicationTest, SigkilledMidInstallReplicaResubscribesCleanly) {
  ClusterFixture fixture;
  net::Client client = fixture.ConnectTo(fixture.server());
  ASSERT_OK(client.Release("path", "tree-hld", "live").status());

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: a replica whose snapshot install SIGKILLs on the spot —
    // power loss mid-install. No gtest machinery may run in here.
    SetFailpoint(failpoints::kClusterInstallSnapshot,
                 FailpointAction::kCrash);
    Workload workload = MakeWorkload();
    auto* server = new net::QueryServer(net::QueryServerOptions{});
    if (!server->AddWorkload("path", workload.graph,
                             workload.weights).ok()) {
      _exit(40);
    }
    if (!server->Start().ok()) _exit(41);
    cluster::ReplicaOptions options;
    options.coordinator_port = fixture.coordinator().replication_port();
    options.name = "doomed";
    auto* replica = new cluster::Replica(options, server);
    if (!replica->Start().ok()) _exit(43);
    // The catch-up chunk arrives within moments and kills us.
    for (int i = 0; i < 500; ++i) usleep(10000);
    _exit(42);  // the armed site was never evaluated
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "exit code "
                                    << WEXITSTATUS(wstatus);
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The coordinator shrugs off the dead session: a fresh replica
  // subscribes and converges to bit-identical state.
  ReplicaNode& fresh = fixture.AddReplica("fresh");
  fixture.AwaitConvergence();
  EXPECT_GE(fresh.replica->full_installs(), 1u);
  ExpectBitIdentical(fixture, 0, kTestSeed ^ 0x51f, "post-crash joiner");
}

// ------------------------------------------------- budget isolation --

TEST(ClusterReplicationTest, BudgetIsChargedExactlyOnceOnTheCoordinator) {
  // The reference: the same release + epochs on a standalone node.
  PrivacyParams spent_reference;
  {
    Workload workload = MakeWorkload();
    ReleaseContext ctx =
        ReleaseContext::Create(kParams, kClusterSeed).value();
    ctx.SetTotalBudget(PrivacyParams{1e9, 0.5, 1.0});
    net::QueryServer standalone(net::QueryServerOptions{}, std::move(ctx));
    ASSERT_OK(standalone.AddWorkload("path", workload.graph,
                                     workload.weights));
    ASSERT_OK(standalone.Start());
    net::Client client =
        net::Client::Connect("127.0.0.1", standalone.port()).value();
    ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                         client.Release("path", "tree-hld", "live"));
    std::vector<EdgeWeightDelta> deltas = {{3, 0.77}};
    ASSERT_OK(client.UpdateWeights(info.handle_id, deltas).status());
    standalone.Stop();
    spent_reference = standalone.context().SpentTotal();
  }

  // The same work on a coordinator with two replicas attached.
  ClusterFixture fixture;
  fixture.AddReplica("r1");
  fixture.AddReplica("r2");
  net::Client client = fixture.ConnectTo(fixture.server());
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "live"));
  std::vector<EdgeWeightDelta> deltas = {{3, 0.77}};
  ASSERT_OK(client.UpdateWeights(info.handle_id, deltas).status());
  fixture.AwaitConvergence();

  // Queries on the replicas are free: hammer them, then compare ledgers.
  for (ReplicaNode& node : fixture.replicas()) {
    net::Client replica_client = fixture.ConnectTo(*node.server);
    ASSERT_OK(
        replica_client.Query(info.handle_id, SamplePairs(200, kTestSeed))
            .status());
  }
  PrivacyParams spent_cluster = fixture.server().context().SpentTotal();
  EXPECT_DOUBLE_EQ(spent_cluster.epsilon, spent_reference.epsilon);
  EXPECT_DOUBLE_EQ(spent_cluster.delta, spent_reference.delta);

  // Replicas hold no ledger at all: their stats report a replica role
  // with zero accounting, and a release attempt is typed kUnsupported.
  for (ReplicaNode& node : fixture.replicas()) {
    ASSERT_TRUE(node.server->replica_mode());
    net::ServerStats stats = node.server->stats();
    EXPECT_EQ(stats.role, static_cast<uint16_t>(net::NodeRole::kReplica));
    EXPECT_EQ(stats.spent_epsilon, 0.0);
    net::Client replica_client = fixture.ConnectTo(*node.server);
    Result<net::ReleaseInfo> refused =
        replica_client.Release("path", "exact", "sneaky");
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(replica_client.last_error().has_value());
    EXPECT_EQ(replica_client.last_error()->kind,
              net::ErrorKind::kUnsupported);
    // The refusal is a routing answer, not an admission event.
    EXPECT_EQ(node.server->stats().budget_rejected, 0u);
  }
  // The coordinator aggregates its read tier in Stats v5. The query
  // counters ride the replicas' periodic idle acks; poll for them.
  net::ServerStats coordinator_stats = fixture.server().stats();
  for (int i = 0; i < 500 && coordinator_stats.replica_queries_served < 2;
       ++i) {
    usleep(10000);
    coordinator_stats = fixture.server().stats();
  }
  EXPECT_EQ(coordinator_stats.role,
            static_cast<uint16_t>(net::NodeRole::kCoordinator));
  EXPECT_EQ(coordinator_stats.num_replicas, 2u);
  EXPECT_GE(coordinator_stats.replica_queries_served, 2u);
}

}  // namespace
}  // namespace dpsp
