#include "graph/shortest_path.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(DijkstraTest, PathGraphDistances) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  EdgeWeights w{1.0, 2.0, 3.0};
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(g, w, 0));
  EXPECT_DOUBLE_EQ(tree.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 3.0);
  EXPECT_DOUBLE_EQ(tree.distance[3], 6.0);
}

TEST(DijkstraTest, PrefersCheaperDetour) {
  // 0-1 expensive direct, 0-2-1 cheap detour.
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}, {0, 2}, {2, 1}}));
  EdgeWeights w{10.0, 1.0, 1.0};
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(g, w, 0));
  EXPECT_DOUBLE_EQ(tree.distance[1], 2.0);
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, ExtractPathEdges(g, tree, 1));
  EXPECT_EQ(path, (std::vector<EdgeId>{1, 2}));
}

TEST(DijkstraTest, UnreachableVertexIsInfinite) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}}));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(g, {1.0}, 0));
  EXPECT_EQ(tree.distance[2], kInfiniteDistance);
  EXPECT_FALSE(tree.Reachable(2));
  EXPECT_FALSE(ExtractPathEdges(g, tree, 2).ok());
}

TEST(DijkstraTest, RejectsNegativeWeights) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}));
  EXPECT_FALSE(Dijkstra(g, {-1.0}, 0).ok());
}

TEST(DijkstraTest, RejectsBadSource) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}));
  EXPECT_FALSE(Dijkstra(g, {1.0}, 5).ok());
}

TEST(DijkstraTest, ParallelEdgesUseCheaper) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}, {0, 1}}));
  EdgeWeights w{5.0, 2.0};
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(g, w, 0));
  EXPECT_DOUBLE_EQ(tree.distance[1], 2.0);
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, ExtractPathEdges(g, tree, 1));
  EXPECT_EQ(path, std::vector<EdgeId>{1});
}

TEST(DijkstraTest, DirectedRespectsOrientation) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}, true));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree from0, Dijkstra(g, {1.0}, 0));
  EXPECT_DOUBLE_EQ(from0.distance[1], 1.0);
  ASSERT_OK_AND_ASSIGN(ShortestPathTree from1, Dijkstra(g, {1.0}, 1));
  EXPECT_EQ(from1.distance[0], kInfiniteDistance);
}

TEST(BellmanFordTest, MatchesDijkstraOnNonNegative) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(30, 0.15, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  ASSERT_OK_AND_ASSIGN(ShortestPathTree d, Dijkstra(g, w, 0));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree b, BellmanFord(g, w, 0));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(d.distance[static_cast<size_t>(v)],
                b.distance[static_cast<size_t>(v)], 1e-9);
  }
}

TEST(BellmanFordTest, HandlesNegativeEdges) {
  // 0 ->(5) 1, 0 ->(10) 2, 2 ->(-8) 1 : best to 1 is 2.
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(3, {{0, 1}, {0, 2}, {2, 1}}, true));
  EdgeWeights w{5.0, 10.0, -8.0};
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, BellmanFord(g, w, 0));
  EXPECT_DOUBLE_EQ(tree.distance[1], 2.0);
}

TEST(BellmanFordTest, DetectsNegativeCycle) {
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(2, {{0, 1}, {1, 0}}, true));
  EdgeWeights w{1.0, -2.0};
  auto result = BellmanFord(g, w, 0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BellmanFordTest, UndirectedNegativeEdgeIsANegativeCycle) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}));
  EXPECT_FALSE(BellmanFord(g, {-1.0}, 0).ok());
}

TEST(HopDistancesTest, GridHops) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(3, 3));
  ASSERT_OK_AND_ASSIGN(std::vector<int> hops, HopDistances(g, 0));
  EXPECT_EQ(hops[0], 0);
  EXPECT_EQ(hops[4], 2);  // center of 3x3
  EXPECT_EQ(hops[8], 4);  // opposite corner
}

TEST(HopDistancesTest, DisconnectedMarked) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}}));
  ASSERT_OK_AND_ASSIGN(std::vector<int> hops, HopDistances(g, 0));
  EXPECT_EQ(hops[2], kUnreachableHops);
}

TEST(ExtractPathTest, VerticesMatchEdges) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  EdgeWeights w(4, 1.0);
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(g, w, 1));
  ASSERT_OK_AND_ASSIGN(std::vector<VertexId> verts,
                       ExtractPathVertices(g, tree, 4));
  EXPECT_EQ(verts, (std::vector<VertexId>{1, 2, 3, 4}));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> edges,
                       ExtractPathEdges(g, tree, 4));
  EXPECT_OK(ValidatePath(g, edges, 1, 4));
}

TEST(ExtractPathTest, PathToSourceIsEmpty) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(g, {1.0, 1.0}, 1));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> edges,
                       ExtractPathEdges(g, tree, 1));
  EXPECT_TRUE(edges.empty());
}

TEST(ValidatePathTest, RejectsBrokenWalks) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  EXPECT_OK(ValidatePath(g, {0, 1, 2}, 0, 3));
  EXPECT_FALSE(ValidatePath(g, {0, 2}, 0, 3).ok());    // gap
  EXPECT_FALSE(ValidatePath(g, {0, 1}, 0, 3).ok());    // wrong endpoint
  EXPECT_FALSE(ValidatePath(g, {9}, 0, 1).ok());       // bad edge id
  EXPECT_OK(ValidatePath(g, {}, 2, 2));                // trivial walk
}

// Property sweep: on random graphs, Dijkstra's tree paths have weight equal
// to the reported distance and validate as walks.
class DijkstraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraPropertyTest, TreePathsConsistent) {
  Rng rng(kTestSeed + static_cast<uint64_t>(GetParam()));
  ASSERT_OK_AND_ASSIGN(Graph g,
                       MakeConnectedErdosRenyi(GetParam(), 0.1, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 3.0, &rng);
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(g, w, 0));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path,
                         ExtractPathEdges(g, tree, v));
    EXPECT_OK(ValidatePath(g, path, 0, v));
    EXPECT_NEAR(TotalWeight(w, path), tree.distance[static_cast<size_t>(v)],
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DijkstraPropertyTest,
                         ::testing::Values(5, 12, 25, 50, 80));

}  // namespace
}  // namespace dpsp
