#include "graph/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/connectivity.h"
#include "graph/shortest_path.h"
#include "graph/tree.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(GeneratorsTest, PathGraphShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(IsTree(g));
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(2), 2);
}

TEST(GeneratorsTest, CycleGraphShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(6));
  EXPECT_EQ(g.num_edges(), 6);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 2);
  EXPECT_FALSE(MakeCycleGraph(2).ok());
}

TEST(GeneratorsTest, GridGraphShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(3, 4));
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.Degree(0), 2);   // corner
  EXPECT_EQ(g.Degree(5), 4);   // interior (row 1, col 1)
}

TEST(GeneratorsTest, CompleteGraphShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteGraph(6));
  EXPECT_EQ(g.num_edges(), 15);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 5);
}

TEST(GeneratorsTest, StarGraphShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeStarGraph(7));
  EXPECT_EQ(g.Degree(0), 6);
  EXPECT_TRUE(IsTree(g));
}

TEST(GeneratorsTest, CompleteBipartiteShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(3, 5));
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_TRUE(IsBipartite(g));
}

TEST(GeneratorsTest, BalancedTreeShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeBalancedTree(15, 2));
  EXPECT_TRUE(IsTree(g));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  EXPECT_EQ(tree.depth(14), 3);  // perfect binary tree of 15 nodes
}

TEST(GeneratorsTest, RandomTreeIsTree) {
  Rng rng(kTestSeed);
  for (int n : {1, 2, 3, 10, 100}) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(n, &rng));
    EXPECT_TRUE(IsTree(g)) << "n=" << n;
  }
}

TEST(GeneratorsTest, RandomRecursiveTreeIsTree) {
  Rng rng(kTestSeed);
  for (int n : {1, 2, 50}) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomRecursiveTree(n, &rng));
    EXPECT_TRUE(IsTree(g));
  }
}

TEST(GeneratorsTest, CaterpillarShape) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCaterpillarTree(4, 3));
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_TRUE(IsTree(g));
}

TEST(GeneratorsTest, ErdosRenyiConnectedAndRespectsDensity) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph sparse, MakeConnectedErdosRenyi(50, 0.0, &rng));
  EXPECT_TRUE(IsConnected(sparse));
  EXPECT_EQ(sparse.num_edges(), 49);  // just the spanning tree
  ASSERT_OK_AND_ASSIGN(Graph dense, MakeConnectedErdosRenyi(50, 0.9, &rng));
  EXPECT_GT(dense.num_edges(), 900);
}

TEST(GeneratorsTest, GeometricGraphConnectedWithCoords) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(GeometricGraph gg,
                       MakeRandomGeometricGraph(60, 0.15, &rng));
  EXPECT_TRUE(IsConnected(gg.graph));
  EXPECT_EQ(gg.coords.size(), 60u);
}

TEST(GeneratorsTest, RoadNetworkShape) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(RoadNetwork network,
                       MakeSyntheticRoadNetwork(6, 8, 0.3, &rng));
  EXPECT_EQ(network.graph.num_vertices(), 48);
  EXPECT_TRUE(IsConnected(network.graph));
  EXPECT_EQ(network.base_weights.size(),
            static_cast<size_t>(network.graph.num_edges()));
  for (double w : network.base_weights) EXPECT_GT(w, 0.0);
}

TEST(GeneratorsTest, CongestionWeightsDominateBase) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(RoadNetwork network,
                       MakeSyntheticRoadNetwork(5, 5, 0.2, &rng));
  EdgeWeights traffic = MakeCongestionWeights(network, 3, 2.0, &rng);
  ASSERT_EQ(traffic.size(), network.base_weights.size());
  for (size_t i = 0; i < traffic.size(); ++i) {
    EXPECT_GE(traffic[i], network.base_weights[i]);
  }
}

TEST(GeneratorsTest, WeightHelpers) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  EdgeWeights constant = MakeConstantWeights(g, 2.5);
  EXPECT_EQ(constant, (EdgeWeights{2.5, 2.5, 2.5}));
  Rng rng(kTestSeed);
  EdgeWeights uniform = MakeUniformWeights(g, 1.0, 2.0, &rng);
  for (double w : uniform) {
    EXPECT_GE(w, 1.0);
    EXPECT_LT(w, 2.0);
  }
}

TEST(GadgetTest, ShortestPathGadgetLayout) {
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeShortestPathGadget(4));
  EXPECT_EQ(gadget.graph.num_vertices(), 5);
  EXPECT_EQ(gadget.graph.num_edges(), 8);
  // Both edges at position i join i and i+1.
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 2; ++b) {
      const EdgeEndpoints& ep = gadget.graph.edge(gadget.EdgeFor(i, b));
      EXPECT_EQ(std::min(ep.u, ep.v), i);
      EXPECT_EQ(std::max(ep.u, ep.v), i + 1);
    }
  }
}

TEST(GadgetTest, EncodeBitsZeroOnSelectedEdges) {
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeShortestPathGadget(3));
  std::vector<int> bits{1, 0, 1};
  EdgeWeights w = gadget.EncodeBits(bits);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(w[static_cast<size_t>(gadget.EdgeFor(i, bits[i]))], 0.0);
    EXPECT_DOUBLE_EQ(w[static_cast<size_t>(gadget.EdgeFor(i, 1 - bits[i]))],
                     1.0);
  }
  // Shortest 0 -> n distance is 0 under the encoding.
  ASSERT_OK_AND_ASSIGN(ShortestPathTree tree, Dijkstra(gadget.graph, w, 0));
  EXPECT_DOUBLE_EQ(tree.distance[3], 0.0);
}

TEST(GadgetTest, MstGadgetLayout) {
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeMstGadget(5));
  EXPECT_EQ(gadget.graph.num_vertices(), 6);
  EXPECT_EQ(gadget.graph.num_edges(), 10);
  for (int i = 0; i < 5; ++i) {
    const EdgeEndpoints& ep = gadget.graph.edge(gadget.EdgeFor(i, 0));
    EXPECT_EQ(std::min(ep.u, ep.v), 0);
    EXPECT_EQ(std::max(ep.u, ep.v), i + 1);
  }
}

TEST(GadgetTest, HourglassGadgetLayout) {
  ASSERT_OK_AND_ASSIGN(HourglassGadgetGraph gadget, MakeMatchingGadget(3));
  EXPECT_EQ(gadget.graph.num_vertices(), 12);
  EXPECT_EQ(gadget.graph.num_edges(), 12);
  ConnectedComponents cc = FindConnectedComponents(gadget.graph);
  EXPECT_EQ(cc.num_components, 3);
  // Edge (c, bl, br) joins VertexFor(0,bl,c) and VertexFor(1,br,c).
  for (int c = 0; c < 3; ++c) {
    for (int bl = 0; bl < 2; ++bl) {
      for (int br = 0; br < 2; ++br) {
        const EdgeEndpoints& ep =
            gadget.graph.edge(gadget.EdgeFor(c, bl, br));
        EXPECT_EQ(std::min(ep.u, ep.v), gadget.VertexFor(0, bl, c));
        EXPECT_EQ(std::max(ep.u, ep.v), gadget.VertexFor(1, br, c));
      }
    }
  }
}

TEST(GadgetTest, HourglassEncodePlacesOneUnitPerGadget) {
  ASSERT_OK_AND_ASSIGN(HourglassGadgetGraph gadget, MakeMatchingGadget(4));
  std::vector<int> bits{0, 1, 0, 1};
  EdgeWeights w = gadget.EncodeBits(bits);
  double total = 0.0;
  for (double x : w) total += x;
  EXPECT_DOUBLE_EQ(total, 4.0);
  for (int c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(
        w[static_cast<size_t>(gadget.EdgeFor(c, 1, 1 - bits[c]))], 1.0);
  }
}

TEST(GeneratorsTest, InvalidArgumentsRejected) {
  EXPECT_FALSE(MakePathGraph(0).ok());
  EXPECT_FALSE(MakeGridGraph(0, 3).ok());
  EXPECT_FALSE(MakeBalancedTree(5, 0).ok());
  EXPECT_FALSE(MakeCaterpillarTree(0, 1).ok());
  Rng rng(kTestSeed);
  EXPECT_FALSE(MakeConnectedErdosRenyi(5, 1.5, &rng).ok());
  EXPECT_FALSE(MakeRandomGeometricGraph(5, 0.0, &rng).ok());
  EXPECT_FALSE(MakeSyntheticRoadNetwork(1, 5, 0.0, &rng).ok());
  EXPECT_FALSE(MakeShortestPathGadget(0).ok());
}

}  // namespace
}  // namespace dpsp
