// Cross-mechanism error-shape property tests: the relative ordering of
// mechanisms promised by the paper must hold empirically.
//
//  * Trees: the recursive algorithm (polylog error) beats the synthetic-
//    graph baseline (~V/eps error) once V is large (Section 4.1 vs §4
//    intro).
//  * Bounded-weight graphs: the covering oracle beats the pure per-pair
//    baseline (~V^2/eps) (Section 4.2).
//  * Shortest paths: released path error grows with hop count, not with
//    total weight (Theorem 5.5).

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"
#include "core/baselines.h"
#include "core/bounded_weight.h"
#include "core/private_shortest_path.h"
#include "core/tree_distance.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(ErrorShapeTest, TreeAlgorithmBeatsPerPairBaselinesOnLargePaths) {
  // The paper's headline comparison: polylog tree error vs the composition
  // baselines (~V/eps per query at best). The synthetic-graph baseline is
  // deliberately NOT asserted against here: its per-pair noise is a sum of
  // independent Laplace draws that empirically cancels to ~sqrt(hops), so
  // at laptop-scale V it is competitive with the tree algorithm even
  // though its worst-case guarantee (V/eps log E) is far weaker — see
  // EXPERIMENTS.md E6 for the measured comparison.
  Rng rng(kTestSeed);
  int n = 512;
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 3.0, &rng);
  PrivacyParams pure{1.0, 0.0, 1.0};
  PrivacyParams approx{1.0, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));

  OnlineStats tree_err, pure_err, approx_err;
  for (int trial = 0; trial < 3; ++trial) {
    ASSERT_OK_AND_ASSIGN(auto tree_oracle,
                         TreeAllPairsOracle::Build(g, w, pure, &rng));
    ASSERT_OK_AND_ASSIGN(auto pp_pure,
                         MakePerPairLaplaceOracle(g, w, pure, &rng));
    ASSERT_OK_AND_ASSIGN(auto pp_approx,
                         MakePerPairLaplaceOracle(g, w, approx, &rng));
    ASSERT_OK_AND_ASSIGN(OracleErrorReport tr,
                         EvaluateOracleAllPairs(g, exact, *tree_oracle));
    ASSERT_OK_AND_ASSIGN(OracleErrorReport pr,
                         EvaluateOracleAllPairs(g, exact, *pp_pure));
    ASSERT_OK_AND_ASSIGN(OracleErrorReport ar,
                         EvaluateOracleAllPairs(g, exact, *pp_approx));
    tree_err.Add(tr.mean_abs_error);
    pure_err.Add(pr.mean_abs_error);
    approx_err.Add(ar.mean_abs_error);
  }
  // Pure per-pair noise is ~V^2/(2 eps) ~ 130k; approx ~V sqrt(ln 1/d)/eps
  // ~ 2.7k; the tree is polylog ~ tens.
  EXPECT_LT(tree_err.mean() * 3.0, approx_err.mean());
  EXPECT_LT(approx_err.mean() * 3.0, pure_err.mean());
}

TEST(ErrorShapeTest, TreeErrorGrowthIsSubLinear) {
  // Double V four times; mean error should grow far slower than V.
  Rng rng(kTestSeed);
  PrivacyParams params{1.0, 0.0, 1.0};
  std::vector<double> errors;
  for (int n : {64, 1024}) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 3.0, &rng);
    ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
    OnlineStats err;
    for (int trial = 0; trial < 3; ++trial) {
      ASSERT_OK_AND_ASSIGN(auto oracle,
                           TreeAllPairsOracle::Build(g, w, params, &rng));
      ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                           EvaluateOracleAllPairs(g, exact, *oracle));
      err.Add(report.mean_abs_error);
    }
    errors.push_back(err.mean());
  }
  // V grew 16x; polylog error should grow well under 6x.
  EXPECT_LT(errors[1], errors[0] * 6.0);
}

TEST(ErrorShapeTest, BoundedWeightBeatsPurePerPairOnGrids) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(12, 12));  // V = 144
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  PrivacyParams params{1.0, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));

  BoundedWeightOptions options;
  options.params = params;
  options.max_weight = 1.0;
  ASSERT_OK_AND_ASSIGN(auto covering_oracle,
                       BoundedWeightOracle::Build(g, w, options, &rng));
  PrivacyParams pure{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto per_pair,
                       MakePerPairLaplaceOracle(g, w, pure, &rng));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport cr,
                       EvaluateOracleAllPairs(g, exact, *covering_oracle));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport pr,
                       EvaluateOracleAllPairs(g, exact, *per_pair));
  // Per-pair pure noise scale is V(V-1)/2 / eps ~ 10k; covering error is
  // O(sqrt(V M / eps)) + noise ~ tens.
  EXPECT_LT(cr.mean_abs_error * 10.0, pr.mean_abs_error);
}

TEST(ErrorShapeTest, ShortestPathErrorTracksHopsNotWeight) {
  // Long heavy path (few hops irrelevant; weights huge) vs many-hop light
  // path: Algorithm 3's error must correlate with hops.
  Rng rng(kTestSeed);
  PrivacyParams params{1.0, 0.0, 1.0};

  // Graph A: 2-hop path with enormous weights.
  ASSERT_OK_AND_ASSIGN(Graph heavy, MakePathGraph(3));
  EdgeWeights heavy_w{10000.0, 10000.0};
  // Graph B: 200-hop path with unit weights.
  ASSERT_OK_AND_ASSIGN(Graph light, MakePathGraph(201));
  EdgeWeights light_w(200, 1.0);

  OnlineStats heavy_err, light_err;
  for (int trial = 0; trial < 20; ++trial) {
    PrivateShortestPathOptions options;
    options.params = params;
    ASSERT_OK_AND_ASSIGN(
        PrivateShortestPaths rh,
        PrivateShortestPaths::Release(heavy, heavy_w, options, &rng));
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> ph, rh.Path(0, 2));
    heavy_err.Add(TotalWeight(heavy_w, ph) - 20000.0);
    ASSERT_OK_AND_ASSIGN(
        PrivateShortestPaths rl,
        PrivateShortestPaths::Release(light, light_w, options, &rng));
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> pl, rl.Path(0, 200));
    light_err.Add(TotalWeight(light_w, pl) - 200.0);
  }
  // On a path graph the released path IS the only path: zero error, even
  // though weights are massive.
  EXPECT_DOUBLE_EQ(heavy_err.mean(), 0.0);
  EXPECT_DOUBLE_EQ(light_err.mean(), 0.0);
}

TEST(ErrorShapeTest, ShortestPathRelativeErrorVanishesForHeavyWeights) {
  // §1.2: "when the edge weights are large, the error will be small in
  // comparison". Scale all weights by 1000; absolute error stays the same
  // (offset depends only on eps, E, gamma), so relative error drops.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(50, 0.1, &rng));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  EdgeWeights w_scaled = w;
  for (double& x : w_scaled) x *= 1000.0;
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{1.0, 0.0, 1.0};

  ASSERT_OK_AND_ASSIGN(ShortestPathTree exact_scaled,
                       Dijkstra(g, w_scaled, 0));
  OnlineStats rel_err;
  for (int trial = 0; trial < 10; ++trial) {
    ASSERT_OK_AND_ASSIGN(
        PrivateShortestPaths release,
        PrivateShortestPaths::Release(g, w_scaled, options, &rng));
    for (VertexId v = 1; v < 50; v += 7) {
      ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, release.Path(0, v));
      double truth = exact_scaled.distance[static_cast<size_t>(v)];
      rel_err.Add((TotalWeight(w_scaled, path) - truth) / truth);
    }
  }
  EXPECT_LT(rel_err.mean(), 0.05);
}

TEST(ErrorShapeTest, BoundedWeightAutoKTradeoffReactsToM) {
  // Larger M should push the mechanism to a smaller covering radius.
  PrivacyParams params{1.0, 1e-6, 1.0};
  int k_small_m = AutoCoveringRadius(400, 0.1, params);
  int k_large_m = AutoCoveringRadius(400, 10.0, params);
  EXPECT_GT(k_small_m, k_large_m);
}

}  // namespace
}  // namespace dpsp
