#include "graph/tree_partition.h"

#include <algorithm>
#include <functional>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

void ExpectValidSplit(const RootedTree& tree, const SubtreeView& view,
                      const TreeSplit& split) {
  int n = view.size();
  // v* and child roots are members of the view.
  std::set<VertexId> view_set(view.vertices.begin(), view.vertices.end());
  EXPECT_TRUE(view_set.count(split.v_star));

  // Parts partition the view.
  std::set<VertexId> seen;
  auto absorb = [&](const SubtreeView& part) {
    EXPECT_OK(ValidateSubtreeView(tree, part));
    for (VertexId v : part.vertices) {
      EXPECT_TRUE(view_set.count(v));
      EXPECT_TRUE(seen.insert(v).second) << "vertex in two parts: " << v;
    }
  };
  absorb(split.rest);
  for (const SubtreeView& child : split.child_subtrees) absorb(child);
  EXPECT_EQ(static_cast<int>(seen.size()), n);

  // Size bounds from the proof of Theorem 4.1.
  for (const SubtreeView& child : split.child_subtrees) {
    EXPECT_LE(child.size() * 2, n);
  }
  EXPECT_LE(split.rest.size(), (n + 1) / 2);

  // rest contains the view root and v*.
  std::set<VertexId> rest_set(split.rest.vertices.begin(),
                              split.rest.vertices.end());
  EXPECT_TRUE(rest_set.count(view.root));
  EXPECT_TRUE(rest_set.count(split.v_star));

  // Each child subtree root is a tree-child of v*.
  ASSERT_EQ(split.child_roots.size(), split.child_subtrees.size());
  for (size_t i = 0; i < split.child_roots.size(); ++i) {
    EXPECT_EQ(tree.parent(split.child_roots[i]), split.v_star);
    EXPECT_EQ(split.child_subtrees[i].root, split.child_roots[i]);
  }
}

TEST(TreePartitionTest, FullViewOfPath) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  SubtreeView view = FullTreeView(tree);
  EXPECT_EQ(view.size(), 8);
  ASSERT_OK_AND_ASSIGN(TreeSplit split, SplitSubtree(tree, view));
  ExpectValidSplit(tree, view, split);
  // For the path rooted at an end, v* is the midpoint-ish vertex whose
  // subtree exceeds half: subtree of vertex i has 8-i vertices; the deepest
  // with > 4 is vertex 3.
  EXPECT_EQ(split.v_star, 3);
}

TEST(TreePartitionTest, StarSplitsAtCenter) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeStarGraph(9));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 1));
  // Rooted at a leaf: the center (vertex 0) has subtree 8 > 4.5.
  SubtreeView view = FullTreeView(tree);
  ASSERT_OK_AND_ASSIGN(TreeSplit split, SplitSubtree(tree, view));
  ExpectValidSplit(tree, view, split);
  EXPECT_EQ(split.v_star, 0);
  EXPECT_EQ(split.child_roots.size(), 7u);
}

TEST(TreePartitionTest, TwoVertexTree) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(2));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  SubtreeView view = FullTreeView(tree);
  ASSERT_OK_AND_ASSIGN(TreeSplit split, SplitSubtree(tree, view));
  ExpectValidSplit(tree, view, split);
}

TEST(TreePartitionTest, SingletonRejected) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(1, {}));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  EXPECT_FALSE(SplitSubtree(tree, FullTreeView(tree)).ok());
}

TEST(TreePartitionTest, RecursiveDepthIsLogarithmic) {
  // Applying the split recursively reaches singletons within
  // ceil(log2 n) + 1 levels (the sensitivity bound of Theorem 4.1).
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(257, &rng));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));

  int max_depth = 0;
  std::function<void(const SubtreeView&, int)> recurse =
      [&](const SubtreeView& view, int depth) {
        max_depth = std::max(max_depth, depth);
        if (view.size() == 1) return;
        TreeSplit split = SplitSubtree(tree, view).value();
        ExpectValidSplit(tree, view, split);
        recurse(split.rest, depth + 1);
        for (const SubtreeView& child : split.child_subtrees) {
          recurse(child, depth + 1);
        }
      };
  recurse(FullTreeView(tree), 0);
  // ceil(log2 257) + 1 = 10.
  EXPECT_LE(max_depth, 10);
}

TEST(ValidateSubtreeViewTest, CatchesViolations) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  SubtreeView empty{0, {}};
  EXPECT_FALSE(ValidateSubtreeView(tree, empty).ok());
  SubtreeView missing_root{2, {0, 1}};
  EXPECT_FALSE(ValidateSubtreeView(tree, missing_root).ok());
  SubtreeView not_closed{0, {0, 2}};  // 2's parent 1 missing
  EXPECT_FALSE(ValidateSubtreeView(tree, not_closed).ok());
  SubtreeView dup{0, {0, 0}};
  EXPECT_FALSE(ValidateSubtreeView(tree, dup).ok());
  SubtreeView ok{0, {0, 1, 2}};
  EXPECT_OK(ValidateSubtreeView(tree, ok));
}

class TreePartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreePartitionPropertyTest, SplitsAreValidAcrossFamilies) {
  auto [family, n] = GetParam();
  Rng rng(kTestSeed + static_cast<uint64_t>(n));
  Result<Graph> g = Status::Internal("unset");
  switch (family) {
    case 0:
      g = MakePathGraph(n);
      break;
    case 1:
      g = MakeBalancedTree(n, 2);
      break;
    case 2:
      g = MakeRandomTree(n, &rng);
      break;
    case 3:
      g = MakeStarGraph(n);
      break;
    default:
      g = MakeCaterpillarTree(n / 3 + 1, 2);
      break;
  }
  ASSERT_TRUE(g.ok());
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(*g, 0));
  SubtreeView view = FullTreeView(tree);
  if (view.size() < 2) return;
  ASSERT_OK_AND_ASSIGN(TreeSplit split, SplitSubtree(tree, view));
  ExpectValidSplit(tree, view, split);
}

INSTANTIATE_TEST_SUITE_P(
    Families, TreePartitionPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(2, 5, 16, 63, 200)));

}  // namespace
}  // namespace dpsp
