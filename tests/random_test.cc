#include "common/random.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInOpenUnitInterval) {
  Rng rng(kTestSeed);
  for (int i = 0; i < 100000; ++i) {
    double u = rng.Uniform();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(kTestSeed);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.Uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
    stats.Add(u);
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(kTestSeed);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    int64_t v = rng.UniformInt(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(kTestSeed);
  int successes = 0;
  for (int i = 0; i < 100000; ++i) successes += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(successes / 100000.0, 0.3, 0.01);
}

TEST(RngTest, LaplaceMomentsMatchTheory) {
  // Lap(b): mean 0, variance 2 b^2.
  Rng rng(kTestSeed);
  double b = 2.5;
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Laplace(b));
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.variance(), 2.0 * b * b, 0.3);
}

TEST(RngTest, LaplaceTailMatchesDefinition31) {
  // Pr[|Y| > t b] = e^{-t} (Definition 3.1).
  Rng rng(kTestSeed);
  double b = 1.0;
  int exceed1 = 0, exceed2 = 0;
  int n = 200000;
  for (int i = 0; i < n; ++i) {
    double y = std::fabs(rng.Laplace(b));
    if (y > 1.0 * b) ++exceed1;
    if (y > 2.0 * b) ++exceed2;
  }
  EXPECT_NEAR(exceed1 / static_cast<double>(n), std::exp(-1.0), 0.01);
  EXPECT_NEAR(exceed2 / static_cast<double>(n), std::exp(-2.0), 0.01);
}

TEST(RngTest, LaplaceSymmetric) {
  Rng rng(kTestSeed);
  int positive = 0;
  int n = 100000;
  for (int i = 0; i < n; ++i) positive += rng.Laplace(1.0) > 0.0 ? 1 : 0;
  EXPECT_NEAR(positive / static_cast<double>(n), 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(kTestSeed);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(kTestSeed);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Gaussian(3.0));
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(kTestSeed);
  std::vector<int> perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    ASSERT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
}

TEST(RngTest, PermutationUniformFirstElement) {
  Rng rng(kTestSeed);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[static_cast<size_t>(rng.Permutation(5)[0])];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, NextSeedProducesIndependentStreams) {
  Rng parent(kTestSeed);
  Rng child1(parent.NextSeed());
  Rng child2(parent.NextSeed());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.Uniform() == child2.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(kTestSeed);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<int>{0});
}

}  // namespace
}  // namespace dpsp
