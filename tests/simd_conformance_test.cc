// Conformance suite for the SIMD kernel dispatch (common/cpu.h,
// core/simd_kernels.h): the AVX2 batch kernels and the portable scalar
// loops must be bit-identical — same released structures, same query
// results, same error paths — on every registered oracle. The suite runs
// each workload twice, once under the ambient dispatch and once under
// ScopedForceScalar, and compares with EXPECT_EQ on raw doubles (no
// tolerance: the kernels share one IEEE operation order by construction).
//
// On machines without AVX2 (or with DPSP_FORCE_SCALAR set) both legs run
// the scalar path and the suite degenerates to a determinism check, which
// is still the contract: dispatch must never change results.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu.h"
#include "core/oracle_registry.h"
#include "core/range_sums.h"
#include "dp/release_context.h"
#include "graph/generators.h"
#include "store/oracle_store.h"
#include "test_util.h"

namespace dpsp {
namespace {

PrivacyParams ParamsFor(const OracleSpec& spec) {
  return spec.loss == LossKind::kZcdp ? PrivacyParams{0.5, 1e-6, 1.0}
                                      : PrivacyParams{1.0, 0.0, 1.0};
}

std::vector<VertexPair> AllPairs(int n) {
  std::vector<VertexPair> pairs;
  pairs.reserve(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) pairs.emplace_back(u, v);
  }
  return pairs;
}

TEST(SimdDispatchTest, ForceScalarSwitchControlsDispatch) {
  // Whatever the ambient state, a forced scope must pin scalar and
  // restore on exit.
  bool ambient = SimdKernelsEnabled();
  {
    ScopedForceScalar force(true);
    EXPECT_FALSE(SimdKernelsEnabled());
    EXPECT_TRUE(ForceScalarKernels());
  }
  EXPECT_EQ(SimdKernelsEnabled(), ambient);
  // The dispatch decision is the documented conjunction.
  EXPECT_EQ(SimdKernelsEnabled(),
            SimdKernelsCompiled() && CpuHasAvx2() && !ForceScalarKernels());
  EXPECT_NE(SimdDispatchDescription(), nullptr);
}

TEST(SimdDispatchTest, ScopedForceScalarNests) {
  ScopedForceScalar outer(true);
  EXPECT_TRUE(ForceScalarKernels());
  {
    ScopedForceScalar inner(false);
    EXPECT_FALSE(ForceScalarKernels());
  }
  EXPECT_TRUE(ForceScalarKernels());  // outer override restored
}

// Every registered oracle, small canonical workload: queries and builds
// must not depend on the dispatch path.
class SimdConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr int kNumVertices = 16;

  void SetUp() override {
    Rng rng(kTestSeed);
    ASSERT_OK_AND_ASSIGN(graph_, MakePathGraph(kNumVertices));
    weights_ = MakeUniformWeights(*graph_, 0.1, 0.9, &rng);
  }

  Result<Graph> graph_ = Status::Internal("unset");
  EdgeWeights weights_;
};

TEST_P(SimdConformanceTest, QueriesBitIdenticalAcrossDispatch) {
  const std::string& name = GetParam();
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(ParamsFor(*spec), kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      auto oracle,
      OracleRegistry::Global().Create(name, *graph_, weights_, ctx));

  // One released object, the full all-pairs batch (256 pairs clears every
  // kernel's minimum-batch threshold), answered under both dispatch modes.
  std::vector<VertexPair> pairs = AllPairs(kNumVertices);
  ASSERT_OK_AND_ASSIGN(std::vector<double> ambient,
                       oracle->DistanceBatch(pairs));
  ScopedForceScalar force(true);
  ASSERT_OK_AND_ASSIGN(std::vector<double> scalar,
                       oracle->DistanceBatch(pairs));
  ASSERT_EQ(ambient.size(), scalar.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(ambient[i], scalar[i])
        << name << " dispatch mismatch at (" << pairs[i].first << ","
        << pairs[i].second << ")";
  }
}

TEST_P(SimdConformanceTest, BuildsBitIdenticalAcrossDispatch) {
  // Builds route noise through the same fixed Rng stream regardless of
  // dispatch (the HLD build batches its chain ascents through the
  // dispatched prefix-sum kernel), so two same-seed builds under opposite
  // modes must release identical structures.
  const std::string& name = GetParam();
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);
  PrivacyParams params = ParamsFor(*spec);
  std::vector<VertexPair> pairs = AllPairs(kNumVertices);

  ASSERT_OK_AND_ASSIGN(ReleaseContext ambient_ctx,
                       ReleaseContext::Create(params, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto ambient_oracle,
                       OracleRegistry::Global().Create(name, *graph_,
                                                       weights_, ambient_ctx));
  ASSERT_OK_AND_ASSIGN(std::vector<double> ambient,
                       ambient_oracle->DistanceBatch(pairs));

  ScopedForceScalar force(true);
  ASSERT_OK_AND_ASSIGN(ReleaseContext scalar_ctx,
                       ReleaseContext::Create(params, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto scalar_oracle,
                       OracleRegistry::Global().Create(name, *graph_,
                                                       weights_, scalar_ctx));
  ASSERT_OK_AND_ASSIGN(std::vector<double> scalar,
                       scalar_oracle->DistanceBatch(pairs));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(ambient[i], scalar[i])
        << name << " build mismatch at (" << pairs[i].first << ","
        << pairs[i].second << ")";
  }
}

TEST_P(SimdConformanceTest, ErrorPathsMatchAcrossDispatch) {
  const std::string& name = GetParam();
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(ParamsFor(*spec), kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      auto oracle,
      OracleRegistry::Global().Create(name, *graph_, weights_, ctx));

  // A big batch with one invalid pair buried mid-stream: both paths must
  // reject with the same status, however far their main loops advanced.
  std::vector<VertexPair> bad = AllPairs(kNumVertices);
  bad[bad.size() / 2] = {0, kNumVertices + 3};
  bad.push_back({-1, 0});
  Result<std::vector<double>> ambient = oracle->DistanceBatch(bad);
  ScopedForceScalar force(true);
  Result<std::vector<double>> scalar = oracle->DistanceBatch(bad);
  ASSERT_FALSE(ambient.ok()) << name;
  ASSERT_FALSE(scalar.ok()) << name;
  EXPECT_EQ(ambient.status().code(), scalar.status().code()) << name;
  EXPECT_EQ(ambient.status().message(), scalar.status().message()) << name;
}

TEST_P(SimdConformanceTest, SnapshotReloadBitIdenticalAcrossDispatch) {
  // The durability analogue of the dispatch contract: released state
  // saved under one dispatch mode and reloaded under the other must
  // answer bit-identically — a snapshot that froze dispatch-dependent
  // bytes, or a loader that redrew anything, would diverge here.
  const std::string& name = GetParam();
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(ParamsFor(*spec), kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      auto oracle,
      OracleRegistry::Global().Create(name, *graph_, weights_, ctx));
  std::vector<VertexPair> pairs = AllPairs(kNumVertices);
  ASSERT_OK_AND_ASSIGN(std::vector<double> ambient,
                       oracle->DistanceBatch(pairs));

  std::string path = ::testing::TempDir() + "dpsp_simd_XXXXXX";
  ASSERT_NE(mkdtemp(path.data()), nullptr);
  path += "/oracle.snap";
  ASSERT_OK(store::SaveOracleSnapshot(path, *oracle,
                                      {name, "path-16", "conformance"}));

  ScopedForceScalar force(true);
  ASSERT_OK_AND_ASSIGN(store::SnapshotReader reader,
                       store::SnapshotReader::Open(path));
  ASSERT_OK_AND_ASSIGN(auto reloaded, store::LoadOracleSnapshot(
                                          reader, *graph_, weights_));
  ASSERT_OK_AND_ASSIGN(std::vector<double> scalar,
                       reloaded->DistanceBatch(pairs));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(ambient[i], scalar[i])
        << name << " snapshot-reload mismatch at (" << pairs[i].first
        << "," << pairs[i].second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredOracles, SimdConformanceTest,
    ::testing::ValuesIn(OracleRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string id = info.param;
      for (char& ch : id) {
        if (ch == '-') ch = '_';
      }
      return id;
    });

// Scale case: the gather kernels change code paths with table size (the
// LCA sparse table's float-exponent log2 needs its round-up correction
// only once d exceeds 2^24 exactness — large inputs keep that corner
// honest) so the tree oracles also get a V=131072 leg.
class SimdLargeScaleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SimdLargeScaleTest, LargeTreeBitIdenticalAcrossDispatch) {
  const std::string& name = GetParam();
  constexpr int kBigV = 131072;
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph path, MakePathGraph(kBigV));
  ASSERT_OK_AND_ASSIGN(Graph random_tree, MakeRandomTree(kBigV, &rng));

  for (const Graph* g : {&path, &random_tree}) {
    EdgeWeights w = MakeUniformWeights(*g, 0.0, 10.0, &rng);
    ASSERT_OK_AND_ASSIGN(
        ReleaseContext ctx,
        ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
    ASSERT_OK_AND_ASSIGN(auto oracle,
                         OracleRegistry::Global().Create(name, *g, w, ctx));
    std::vector<VertexPair> pairs;
    pairs.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      pairs.emplace_back(static_cast<VertexId>(rng.UniformInt(0, kBigV - 1)),
                         static_cast<VertexId>(rng.UniformInt(0, kBigV - 1)));
    }
    ASSERT_OK_AND_ASSIGN(std::vector<double> ambient,
                         oracle->DistanceBatch(pairs));
    ScopedForceScalar force(true);
    ASSERT_OK_AND_ASSIGN(std::vector<double> scalar,
                         oracle->DistanceBatch(pairs));
    for (size_t i = 0; i < pairs.size(); ++i) {
      ASSERT_EQ(ambient[i], scalar[i])
          << name << " at V=" << kBigV << " pair index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TreeOracles, SimdLargeScaleTest,
                         ::testing::Values("tree-recursive", "tree-hld"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string id = info.param;
                           for (char& ch : id) {
                             if (ch == '-') ch = '_';
                           }
                           return id;
                         });

TEST(SimdPrefixSumTest, BatchedPrefixSumsMatchScalarWalk) {
  // Direct kernel check on the dyadic structure, including the awkward
  // sizes (non-powers of two, tails shorter than a vector) and hi = 0 /
  // hi = size endpoints.
  Rng rng(kTestSeed);
  for (int m : {1, 2, 3, 7, 8, 64, 1000, 4096, 100000}) {
    std::vector<double> values(static_cast<size_t>(m));
    for (double& v : values) v = rng.Uniform(-5.0, 5.0);
    NoisyDyadicRangeSums sums(values, 0.7, &rng);
    std::vector<int> his;
    his.reserve(256);
    for (int i = 0; i < 251; ++i) {
      his.push_back(static_cast<int>(rng.UniformInt(0, m)));
    }
    his.push_back(0);
    his.push_back(m);
    his.push_back(m / 2);
    std::vector<double> batched(his.size());
    sums.PrefixSumsUnchecked(his, batched.data());
    for (size_t i = 0; i < his.size(); ++i) {
      ASSERT_EQ(batched[i], sums.PrefixSumUnchecked(his[i]))
          << "m=" << m << " hi=" << his[i];
    }
    // Forced scalar batches agree too (trivially when ambient dispatch is
    // already scalar).
    ScopedForceScalar force(true);
    std::vector<double> scalar(his.size());
    sums.PrefixSumsUnchecked(his, scalar.data());
    for (size_t i = 0; i < his.size(); ++i) {
      ASSERT_EQ(batched[i], scalar[i]) << "m=" << m << " hi=" << his[i];
    }
  }
}

}  // namespace
}  // namespace dpsp
