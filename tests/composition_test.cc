#include "dp/composition.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpsp {
namespace {

TEST(BasicCompositionTest, Linear) {
  EXPECT_DOUBLE_EQ(BasicCompositionEpsilon(10, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(BasicCompositionEpsilon(0, 0.5), 0.0);
}

TEST(AdvancedCompositionTest, FormulaValue) {
  // eps' = sqrt(2k ln(1/d')) e + k e (e^e - 1).
  double k = 100, e = 0.01, d = 0.05;
  double expected = std::sqrt(2 * k * std::log(1 / d)) * e +
                    k * e * (std::exp(e) - 1.0);
  EXPECT_NEAR(AdvancedCompositionEpsilon(100, 0.01, 0.05), expected, 1e-12);
}

TEST(AdvancedCompositionTest, MonotoneInEps0) {
  double prev = 0.0;
  for (double e = 0.001; e < 0.2; e += 0.002) {
    double cur = AdvancedCompositionEpsilon(50, e, 0.01);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(PerQueryEpsilonAdvancedTest, InvertsForward) {
  for (int k : {1, 10, 100, 10000}) {
    for (double eps : {0.1, 1.0, 3.0}) {
      ASSERT_OK_AND_ASSIGN(double e0,
                           PerQueryEpsilonAdvanced(k, eps, 1e-6));
      EXPECT_NEAR(AdvancedCompositionEpsilon(k, e0, 1e-6), eps, 1e-6);
    }
  }
}

TEST(PerQueryEpsilonAdvancedTest, BeatsBasicForLargeK) {
  // For k queries, advanced composition gives per-query eps ~ eps/sqrt(k),
  // much larger than eps/k once k is big.
  int k = 10000;
  ASSERT_OK_AND_ASSIGN(double advanced,
                       PerQueryEpsilonAdvanced(k, 1.0, 1e-6));
  ASSERT_OK_AND_ASSIGN(double basic, PerQueryEpsilonBasic(k, 1.0));
  EXPECT_GT(advanced, 10.0 * basic);
}

TEST(PerQueryEpsilonAdvancedTest, MatchesAsymptoticRate) {
  // eps0 should scale like eps / sqrt(2 k ln(1/d')) for small eps.
  int k = 1 << 16;
  double eps = 0.5, d = 1e-9;
  ASSERT_OK_AND_ASSIGN(double e0, PerQueryEpsilonAdvanced(k, eps, d));
  double predicted = eps / std::sqrt(2.0 * k * std::log(1.0 / d));
  EXPECT_NEAR(e0, predicted, predicted * 0.1);
}

TEST(PerQueryEpsilonBasicTest, Division) {
  ASSERT_OK_AND_ASSIGN(double e0, PerQueryEpsilonBasic(4, 2.0));
  EXPECT_DOUBLE_EQ(e0, 0.5);
}

TEST(PerQueryEpsilonBestTest, PureFallsBackToBasic) {
  ASSERT_OK_AND_ASSIGN(double e0, PerQueryEpsilonBest(100, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(e0, 0.01);
}

TEST(PerQueryEpsilonBestTest, PicksLarger) {
  // Small k: basic wins. Large k: advanced wins.
  ASSERT_OK_AND_ASSIGN(double small_k, PerQueryEpsilonBest(2, 1.0, 1e-6));
  ASSERT_OK_AND_ASSIGN(double basic2, PerQueryEpsilonBasic(2, 1.0));
  EXPECT_DOUBLE_EQ(small_k, basic2);
  ASSERT_OK_AND_ASSIGN(double large_k, PerQueryEpsilonBest(100000, 1.0, 1e-6));
  ASSERT_OK_AND_ASSIGN(double basic_lk, PerQueryEpsilonBasic(100000, 1.0));
  EXPECT_GT(large_k, basic_lk);
}

TEST(PerQueryEpsilonTest, InvalidArguments) {
  EXPECT_FALSE(PerQueryEpsilonAdvanced(0, 1.0, 0.01).ok());
  EXPECT_FALSE(PerQueryEpsilonAdvanced(5, -1.0, 0.01).ok());
  EXPECT_FALSE(PerQueryEpsilonAdvanced(5, 1.0, 0.0).ok());
  EXPECT_FALSE(PerQueryEpsilonAdvanced(5, 1.0, 1.5).ok());
  EXPECT_FALSE(PerQueryEpsilonBasic(0, 1.0).ok());
}

TEST(CompositionSanityTest, ComposedBudgetNeverExceedsTotal) {
  // Whatever per-query epsilon we get back, recomposing it must not blow
  // the budget (the guarantee mechanisms rely on).
  for (int k : {3, 37, 5000}) {
    for (double eps : {0.2, 1.0}) {
      for (double d : {1e-3, 1e-8}) {
        ASSERT_OK_AND_ASSIGN(double e0, PerQueryEpsilonAdvanced(k, eps, d));
        EXPECT_LE(AdvancedCompositionEpsilon(k, e0, d), eps + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace dpsp
