// Adversarial corruption tables for the store layer: truncations,
// single-bit flips, lying length fields, and protocol misuse (duplicate
// commits, unknown intents, LSN regressions) must every one surface as a
// typed error or a validated identical read — never a crash, never a
// silently partial result. The snapshot's uncovered bytes (header pad,
// alignment gaps) may absorb a flip, so the bit-flip property is
// "rejected OR bit-identical", which is exactly the checksum contract.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "dp/privacy_loss.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "test_util.h"

namespace dpsp {
namespace {

std::string MakeTempDir() {
  std::string path = ::testing::TempDir() + "dpsp_fuzz_XXXXXX";
  EXPECT_NE(mkdtemp(path.data()), nullptr);
  return path;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::vector<ReleasedSection> CanonicalSections() {
  std::vector<ReleasedSection> sections;
  sections.push_back({"alpha", {1, 2, 3, 4, 5, 6, 7, 8}});
  sections.push_back({"beta", std::vector<uint8_t>(100, 0xAB)});
  sections.push_back({"gamma", {0xFF}});
  return sections;
}

bool SectionsMatch(const store::SnapshotReader& reader,
                   const std::vector<ReleasedSection>& expected) {
  if (reader.sections().size() != expected.size()) return false;
  for (const ReleasedSection& section : expected) {
    const ReleasedSectionView* view = reader.Find(section.label);
    if (view == nullptr) return false;
    if (view->bytes.size() != section.bytes.size()) return false;
    for (size_t i = 0; i < section.bytes.size(); ++i) {
      if (view->bytes[i] != section.bytes[i]) return false;
    }
  }
  return true;
}

// ------------------------------------------------- snapshot corruption --

TEST(SnapshotFuzzTest, EveryTruncationIsATypedError) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/clean.snap";
  ASSERT_OK(store::WriteSnapshot(path, CanonicalSections()));
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  const std::string mangled = dir + "/mangled.snap";
  for (size_t len = 0; len < clean.size(); ++len) {
    std::vector<uint8_t> prefix(clean.begin(),
                                clean.begin() + static_cast<long>(len));
    WriteFileBytes(mangled, prefix);
    Result<store::SnapshotReader> opened =
        store::SnapshotReader::Open(mangled);
    ASSERT_FALSE(opened.ok()) << "accepted a " << len << "-byte truncation";
    EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument)
        << "truncation to " << len;
  }
}

TEST(SnapshotFuzzTest, EveryBitFlipIsRejectedOrHarmless) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/clean.snap";
  const std::vector<ReleasedSection> sections = CanonicalSections();
  ASSERT_OK(store::WriteSnapshot(path, sections));
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  const std::string mangled = dir + "/mangled.snap";
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = clean;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      WriteFileBytes(mangled, flipped);
      Result<store::SnapshotReader> opened =
          store::SnapshotReader::Open(mangled);
      if (!opened.ok()) {
        EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument)
            << "byte " << byte << " bit " << bit;
        continue;
      }
      // The flip landed in padding no checksum covers: the validated
      // content must still be bit-identical to what was written.
      EXPECT_TRUE(SectionsMatch(*opened, sections))
          << "accepted DIFFERENT content after flipping byte " << byte
          << " bit " << bit;
    }
  }
}

TEST(SnapshotFuzzTest, LyingHeaderLengthsAreRejected) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/clean.snap";
  ASSERT_OK(store::WriteSnapshot(path, CanonicalSections()));
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  const std::string mangled = dir + "/mangled.snap";

  // Patch a header field to a lie and RE-SIGN the header checksum, so
  // only the bounds checks stand between the lie and an out-of-range
  // read. Header layout (v2): magic(8) version(4) num_sections(4)
  // table_offset(8) table_bytes(8) table_crc(4) epoch_lsn(8)
  // header_crc(4 at offset 44, over the first 44 bytes).
  auto resign_and_expect_reject =
      [&](size_t field_offset, uint64_t value, int field_bytes,
          const char* what) {
        std::vector<uint8_t> lied = clean;
        for (int i = 0; i < field_bytes; ++i) {
          lied[field_offset + static_cast<size_t>(i)] =
              static_cast<uint8_t>(value >> (8 * i));
        }
        const uint32_t crc = Crc32c(lied.data(), 44);
        for (int i = 0; i < 4; ++i) {
          lied[44 + static_cast<size_t>(i)] =
              static_cast<uint8_t>(crc >> (8 * i));
        }
        WriteFileBytes(mangled, lied);
        Result<store::SnapshotReader> opened =
            store::SnapshotReader::Open(mangled);
        EXPECT_FALSE(opened.ok()) << what;
      };

  resign_and_expect_reject(16, clean.size() * 2, 8,
                           "table_offset past the file");
  resign_and_expect_reject(24, uint64_t{1} << 40, 8, "huge table_bytes");
  resign_and_expect_reject(12, 1000000, 4, "lying num_sections");
  resign_and_expect_reject(24, 0, 8, "table_bytes too small for entries");
}

// ------------------------------------------------------ WAL corruption --

std::string WriteCanonicalWal(const std::string& dir) {
  const std::string path = dir + "/budget.wal";
  auto wal = store::BudgetWal::Open(path, 1).value();
  uint64_t first = wal->AppendIntent("a", PrivacyLoss::Pure(0.5)).value();
  EXPECT_OK(wal->AppendCommit(first));
  uint64_t second = wal->AppendIntent("b", PrivacyLoss::Pure(0.25)).value();
  EXPECT_OK(wal->AppendCommit(second));
  return path;
}

TEST(WalFuzzTest, BitFlipsNeverCrashAndNeverGrowTheLedger) {
  const std::string dir = MakeTempDir();
  const std::string path = WriteCanonicalWal(dir);
  const std::vector<uint8_t> clean = ReadFileBytes(path);
  ASSERT_OK_AND_ASSIGN(store::WalRecovery baseline,
                       store::ReplayBudgetWal(path));
  ASSERT_EQ(baseline.records, 4u);
  const std::string mangled = dir + "/mangled.wal";
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = clean;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      WriteFileBytes(mangled, flipped);
      Result<store::WalRecovery> replayed = store::ReplayBudgetWal(mangled);
      if (!replayed.ok()) continue;  // typed rejection: fine
      // A flip the replay survives must have been absorbed by the
      // torn-tail rule, which can only SHRINK the accepted log — a
      // bigger or weirder ledger would be fabricated budget history.
      EXPECT_LE(replayed->records, baseline.records)
          << "byte " << byte << " bit " << bit;
      EXPECT_LE(replayed->charges.size(), baseline.charges.size())
          << "byte " << byte << " bit " << bit;
      EXPECT_LE(replayed->next_lsn, baseline.next_lsn)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(WalFuzzTest, DamageBeforeTheTailIsAHardError) {
  const std::string dir = MakeTempDir();
  const std::string path = WriteCanonicalWal(dir);
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Flip a payload byte of the FIRST record: later records still parse,
  // so this is corruption, not a crash artifact.
  bytes[20] ^= 0x01;
  WriteFileBytes(path, bytes);
  Result<store::WalRecovery> replayed = store::ReplayBudgetWal(path);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalFuzzTest, DuplicateCommitIsATypedError) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/budget.wal";
  {
    ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(path, 1));
    ASSERT_OK_AND_ASSIGN(uint64_t lsn,
                         wal->AppendIntent("a", PrivacyLoss::Pure(0.5)));
    ASSERT_OK(wal->AppendCommit(lsn));
    ASSERT_OK(wal->AppendCommit(lsn));  // append-side does not dedupe
  }
  Result<store::WalRecovery> replayed = store::ReplayBudgetWal(path);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalFuzzTest, CommitForUnknownIntentIsATypedError) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/budget.wal";
  {
    ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(path, 1));
    ASSERT_OK(wal->AppendIntent("a", PrivacyLoss::Pure(0.5)).status());
    ASSERT_OK(wal->AppendCommit(1));
    ASSERT_OK(wal->AppendCommit(7));  // never issued
  }
  Result<store::WalRecovery> replayed = store::ReplayBudgetWal(path);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalFuzzTest, LsnRegressionIsATypedError) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/budget.wal";
  {
    ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(path, 1));
    ASSERT_OK(wal->AppendIntent("a", PrivacyLoss::Pure(0.5)).status());
    ASSERT_OK(wal->AppendIntent("b", PrivacyLoss::Pure(0.5)).status());
  }
  {
    // A writer reopened at the WRONG next_lsn (a recovery bug) would
    // write a regressing intent; replay must refuse the whole log rather
    // than silently shrink the ledger.
    ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(path, 1));
    ASSERT_OK(wal->AppendIntent("c", PrivacyLoss::Pure(0.5)).status());
  }
  Result<store::WalRecovery> replayed = store::ReplayBudgetWal(path);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpsp
