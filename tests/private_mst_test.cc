#include "core/private_mst.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"
#include "graph/generators.h"
#include "graph/spanning_tree.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(PrivateMstTest, ReleasesASpanningTree) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(30, 0.2, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivateMstResult result,
                       PrivateMst(g, w, params, &rng));
  EXPECT_TRUE(IsSpanningTree(g, result.tree_edges));
  EXPECT_DOUBLE_EQ(result.noise_scale, 1.0);
}

TEST(PrivateMstTest, HighEpsilonRecoversOptimal) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(25, 0.3, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
  PrivacyParams params{1e8, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivateMstResult result,
                       PrivateMst(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> optimal, KruskalMst(g, w));
  EXPECT_NEAR(TotalWeight(w, result.tree_edges), TotalWeight(w, optimal),
              1e-5);
}

TEST(PrivateMstTest, TheoremB3BoundHolds) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(40, 0.15, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 3.0, &rng);
  PrivacyParams params{0.5, 0.0, 1.0};
  double gamma = 0.05;
  double bound =
      PrivateMstErrorBound(g.num_vertices(), g.num_edges(), params, gamma);
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> optimal, KruskalMst(g, w));
  double opt_weight = TotalWeight(w, optimal);
  int violations = 0;
  for (int trial = 0; trial < 20; ++trial) {
    ASSERT_OK_AND_ASSIGN(PrivateMstResult result,
                         PrivateMst(g, w, params, &rng));
    double error = TotalWeight(w, result.tree_edges) - opt_weight;
    EXPECT_GE(error, -1e-9);  // never better than optimal
    if (error > bound) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(PrivateMstTest, NegativeWeightsSupported) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteGraph(10));
  EdgeWeights w = MakeUniformWeights(g, -5.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivateMstResult result,
                       PrivateMst(g, w, params, &rng));
  EXPECT_TRUE(IsSpanningTree(g, result.tree_edges));
}

TEST(PrivateMstTest, DisconnectedFails) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {{0, 1}, {2, 3}}));
  PrivacyParams params;
  EXPECT_FALSE(PrivateMst(g, {1.0, 1.0}, params, &rng).ok());
}

TEST(MstLowerBoundTest, TheoremB1Values) {
  // For small eps, delta: alpha -> 0.5 (V-1); at eps = 0, delta = 0 it is
  // exactly (V-1)/2.
  EXPECT_NEAR(MstLowerBound(101, 1e-6, 0.0), 100.0 / 2.0, 0.01);
  EXPECT_GT(MstLowerBound(101, 0.1, 0.0), 0.49 * 100.0 * 0.9);
  // Large delta kills the bound.
  EXPECT_DOUBLE_EQ(MstLowerBound(101, 1.0, 0.5), 0.0);
  // Decreasing in eps.
  EXPECT_GT(MstLowerBound(101, 0.5, 0.0), MstLowerBound(101, 2.0, 0.0));
}

TEST(PrivateMstErrorBoundTest, ScalesWithV) {
  PrivacyParams params{1.0, 0.0, 1.0};
  double b10 = PrivateMstErrorBound(10, 45, params, 0.05);
  double b100 = PrivateMstErrorBound(100, 4950, params, 0.05);
  EXPECT_GT(b100, 9.0 * b10);  // ~linear in V (log factor grows too)
}

TEST(PrivateMstCostTest, SensitivityOneAccuracy) {
  // The cost query has no Omega(V) barrier: its error is O(1/eps)
  // regardless of graph size.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(200, 0.05, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> tree, KruskalMst(g, w));
  double truth = TotalWeight(w, tree);
  OnlineStats err;
  for (int trial = 0; trial < 200; ++trial) {
    ASSERT_OK_AND_ASSIGN(double cost, PrivateMstCost(g, w, params, &rng));
    err.Add(std::fabs(cost - truth));
  }
  // Mean |Lap(1)| = 1.
  EXPECT_NEAR(err.mean(), 1.0, 0.3);
}

TEST(PrivateMstTest, GadgetErrorBetweenLowerAndUpperBounds) {
  // On the Figure-3 gadget, mean error must respect Theorem B.1's alpha
  // (sanity of the implementation: it cannot beat the lower bound).
  Rng rng(kTestSeed);
  int n = 60;
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeMstGadget(n));
  PrivacyParams params{1.0, 0.0, 1.0};
  OnlineStats error;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<int> x(static_cast<size_t>(n));
    for (int& b : x) b = rng.Bernoulli(0.5) ? 1 : 0;
    EdgeWeights wx = gadget.EncodeBits(x);
    ASSERT_OK_AND_ASSIGN(PrivateMstResult result,
                         PrivateMst(gadget.graph, wx, params, &rng));
    error.Add(TotalWeight(wx, result.tree_edges));  // optimum is 0
  }
  double alpha = MstLowerBound(n + 1, params.epsilon, params.delta);
  double upper = PrivateMstErrorBound(n + 1, 2 * n, params, 0.01);
  EXPECT_GE(error.mean(), alpha * 0.6);  // statistical slack
  EXPECT_LE(error.mean(), upper);
}

}  // namespace
}  // namespace dpsp
