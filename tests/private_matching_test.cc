#include "core/private_matching.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(PrivateMatchingTest, ReleasesAPerfectMatching) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(8, 8));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 3.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivateMatchingResult result,
                       PrivateMatching(g, w, params, &rng));
  EXPECT_TRUE(IsPerfectMatching(g, result.matching));
}

TEST(PrivateMatchingTest, HighEpsilonRecoversOptimal) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(7, 7));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
  PrivacyParams params{1e8, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivateMatchingResult result,
                       PrivateMatching(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(Matching optimal, MinWeightPerfectMatching(g, w));
  EXPECT_NEAR(result.matching.Weight(w), optimal.Weight(w), 1e-5);
}

TEST(PrivateMatchingTest, TheoremB6BoundHolds) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(10, 10));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 2.0, &rng);
  PrivacyParams params{0.5, 0.0, 1.0};
  double bound = PrivateMatchingErrorBound(g.num_vertices(), g.num_edges(),
                                           params, 0.05);
  ASSERT_OK_AND_ASSIGN(Matching optimal, MinWeightPerfectMatching(g, w));
  double opt_weight = optimal.Weight(w);
  int violations = 0;
  for (int trial = 0; trial < 20; ++trial) {
    ASSERT_OK_AND_ASSIGN(PrivateMatchingResult result,
                         PrivateMatching(g, w, params, &rng));
    double error = result.matching.Weight(w) - opt_weight;
    EXPECT_GE(error, -1e-9);
    if (error > bound) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(PrivateMatchingTest, HourglassGadgetWithinBounds) {
  Rng rng(kTestSeed);
  int n = 50;
  ASSERT_OK_AND_ASSIGN(HourglassGadgetGraph gadget, MakeMatchingGadget(n));
  PrivacyParams params{1.0, 0.0, 1.0};
  OnlineStats error;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<int> x(static_cast<size_t>(n));
    for (int& b : x) b = rng.Bernoulli(0.5) ? 1 : 0;
    EdgeWeights wx = gadget.EncodeBits(x);
    ASSERT_OK_AND_ASSIGN(PrivateMatchingResult result,
                         PrivateMatching(gadget.graph, wx, params, &rng));
    error.Add(result.matching.Weight(wx));  // optimum is 0
  }
  double alpha = MatchingLowerBound(4 * n, params.epsilon, params.delta);
  double upper =
      PrivateMatchingErrorBound(4 * n, 4 * n, params, 0.01);
  EXPECT_GE(error.mean(), alpha * 0.5);
  EXPECT_LE(error.mean(), upper);
}

TEST(PrivateMatchingTest, OddGraphFails) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  PrivacyParams params;
  EXPECT_FALSE(PrivateMatching(g, EdgeWeights(4, 1.0), params, &rng).ok());
}

TEST(PrivateMatchingCostTest, SensitivityOneAccuracy) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(12, 12));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{2.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(Matching optimal, MinWeightPerfectMatching(g, w));
  double truth = optimal.Weight(w);
  OnlineStats err;
  for (int trial = 0; trial < 200; ++trial) {
    ASSERT_OK_AND_ASSIGN(double cost,
                         PrivateMatchingCost(g, w, params, &rng));
    err.Add(std::fabs(cost - truth));
  }
  // Mean |Lap(1/2)| = 0.5 — independent of V.
  EXPECT_NEAR(err.mean(), 0.5, 0.15);
}

TEST(MatchingLowerBoundTest, TheoremB4Values) {
  // V/4 * (1 - (1+e^eps)delta)/(1+e^{2eps}); at eps ~ 0 this is ~ V/8.
  EXPECT_NEAR(MatchingLowerBound(80, 1e-9, 0.0), 10.0, 0.01);
  EXPECT_GT(MatchingLowerBound(100, 0.1, 0.0), 0.12 * 100 * 0.9);
  EXPECT_DOUBLE_EQ(MatchingLowerBound(100, 1.0, 0.9), 0.0);
}

}  // namespace
}  // namespace dpsp
