// Warm-restart behavior of the persistent QueryServer: a fresh boot over
// an empty directory reports itself fresh; a restart over a populated one
// recovers the ledger and every snapshotted handle (same ids, same
// bit-identical answers), refuses recovered handle names, keeps charging
// against the recovered spend, and persists update epochs so the
// post-update structure is what a later restart serves.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "test_util.h"

namespace dpsp {
namespace {

constexpr int kNumVertices = 16;

std::string MakeTempDir() {
  std::string path = ::testing::TempDir() + "dpsp_warm_XXXXXX";
  EXPECT_NE(mkdtemp(path.data()), nullptr);
  return path;
}

std::vector<VertexPair> AllPairs(int n) {
  std::vector<VertexPair> pairs;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) pairs.emplace_back(u, v);
  }
  return pairs;
}

class WarmRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir();
    Rng rng(kTestSeed);
    ASSERT_OK_AND_ASSIGN(graph_, MakePathGraph(kNumVertices));
    weights_ = MakeUniformWeights(*graph_, 0.1, 0.9, &rng);
  }

  std::unique_ptr<net::QueryServer> MakeServer() {
    net::QueryServerOptions options;
    options.persistence_dir = dir_;
    ReleaseContext ctx =
        ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
    auto server =
        std::make_unique<net::QueryServer>(options, std::move(ctx));
    EXPECT_OK(server->AddWorkload("path", *graph_, weights_));
    return server;
  }

  std::string dir_;
  Result<Graph> graph_ = Status::Internal("unset");
  EdgeWeights weights_;
};

TEST_F(WarmRestartTest, FreshBootOverAnEmptyDirectoryIsFresh) {
  std::unique_ptr<net::QueryServer> server = MakeServer();
  ASSERT_OK(server->Start());
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  ASSERT_TRUE(stats.has_recovery);
  EXPECT_FALSE(stats.warm_restart);
  EXPECT_EQ(stats.recovered_handles, 0u);
  EXPECT_EQ(stats.recovered_charges, 0u);
}

TEST_F(WarmRestartTest, RestartRecoversHandlesLedgerAndAnswers) {
  const std::vector<VertexPair> pairs = AllPairs(kNumVertices);
  std::vector<double> hld_before, laplace_before;
  double spent_before = 0.0;
  {
    std::unique_ptr<net::QueryServer> server = MakeServer();
    ASSERT_OK(server->Start());
    ASSERT_OK_AND_ASSIGN(net::Client client,
                         net::Client::Connect("127.0.0.1", server->port()));
    ASSERT_OK_AND_ASSIGN(net::ReleaseInfo hld,
                         client.Release("path", "tree-hld", "hld"));
    ASSERT_OK_AND_ASSIGN(
        net::ReleaseInfo laplace,
        client.Release("path", "per-pair-laplace", "laplace"));
    EXPECT_EQ(hld.handle_id, 0u);
    EXPECT_EQ(laplace.handle_id, 1u);
    ASSERT_OK_AND_ASSIGN(hld_before, client.Query(hld.handle_id, pairs));
    ASSERT_OK_AND_ASSIGN(laplace_before,
                         client.Query(laplace.handle_id, pairs));
    spent_before = server->context().SpentTotal().epsilon;
    server->Stop();
  }

  std::unique_ptr<net::QueryServer> server = MakeServer();
  ASSERT_OK(server->Start());
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  ASSERT_TRUE(stats.has_recovery);
  EXPECT_TRUE(stats.warm_restart);
  EXPECT_EQ(stats.recovered_handles, 2u);
  EXPECT_EQ(stats.recovered_charges, 2u);
  EXPECT_EQ(stats.open_handles, 2u);
  // The WAL replay certifies the same spend the first process charged.
  EXPECT_EQ(server->context().SpentTotal().epsilon, spent_before);
  // The wire-level budget position reflects the recovered ledger too.
  ASSERT_TRUE(stats.has_accounting);
  EXPECT_EQ(stats.spent_epsilon, spent_before);

  // Recovered handles keep their ids and answer bit-identically —
  // serving straight from the snapshots, immediately, with no rebuild
  // and no new noise.
  ASSERT_OK_AND_ASSIGN(std::vector<double> hld_after,
                       client.Query(0, pairs));
  ASSERT_OK_AND_ASSIGN(std::vector<double> laplace_after,
                       client.Query(1, pairs));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(hld_after[i], hld_before[i]) << "hld pair " << i;
    EXPECT_EQ(laplace_after[i], laplace_before[i]) << "laplace pair " << i;
  }

  // Recovered names stay taken (a release is a spend, never repeated
  // silently); fresh names keep working and charge on top.
  EXPECT_FALSE(client.Release("path", "tree-hld", "hld").ok());
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo fresh,
                       client.Release("path", "tree-hld", "hld2"));
  EXPECT_EQ(fresh.handle_id, 2u);
  EXPECT_GT(server->context().SpentTotal().epsilon, spent_before);
}

TEST_F(WarmRestartTest, UpdateEpochsSurviveRestart) {
  const std::vector<VertexPair> pairs = AllPairs(kNumVertices);
  std::vector<double> updated_before;
  double spent_before = 0.0;
  {
    std::unique_ptr<net::QueryServer> server = MakeServer();
    ASSERT_OK(server->Start());
    ASSERT_OK_AND_ASSIGN(net::Client client,
                         net::Client::Connect("127.0.0.1", server->port()));
    ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                         client.Release("path", "tree-hld", "hld"));
    std::vector<EdgeWeightDelta> deltas = {{0, 0.77}, {5, 0.33}};
    ASSERT_OK(client.UpdateWeights(info.handle_id, deltas).status());
    ASSERT_OK_AND_ASSIGN(updated_before,
                         client.Query(info.handle_id, pairs));
    spent_before = server->context().SpentTotal().epsilon;
    server->Stop();
  }

  std::unique_ptr<net::QueryServer> server = MakeServer();
  ASSERT_OK(server->Start());
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  EXPECT_TRUE(stats.warm_restart);
  EXPECT_EQ(stats.recovered_handles, 1u);
  // Release + update epoch: two charges on the recovered ledger.
  EXPECT_EQ(stats.recovered_charges, 2u);
  EXPECT_EQ(server->context().SpentTotal().epsilon, spent_before);

  // The snapshot is the POST-epoch image: restart serves the updated
  // structure, not the original release.
  ASSERT_OK_AND_ASSIGN(std::vector<double> updated_after,
                       client.Query(0, pairs));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(updated_after[i], updated_before[i]) << "pair " << i;
  }
}

TEST_F(WarmRestartTest, StrayTempFilesAreSweptOnRecovery) {
  {
    std::unique_ptr<net::QueryServer> server = MakeServer();
    ASSERT_OK(server->Start());
    ASSERT_OK_AND_ASSIGN(net::Client client,
                         net::Client::Connect("127.0.0.1", server->port()));
    ASSERT_OK(client.Release("path", "tree-hld", "hld").status());
    server->Stop();
  }
  // A dead partial write from a crashed snapshotter.
  const std::string stray = dir_ + "/handle-000099.snap.tmp";
  FILE* f = fopen(stray.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("partial", f);
  fclose(f);

  std::unique_ptr<net::QueryServer> server = MakeServer();
  ASSERT_OK(server->Start());
  EXPECT_NE(access(stray.c_str(), F_OK), 0) << "stray .tmp not removed";
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  EXPECT_EQ(stats.recovered_handles, 1u);
}

}  // namespace
}  // namespace dpsp
