#include "dp/randomized_response.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(FlipProbabilityTest, Values) {
  EXPECT_DOUBLE_EQ(RandomizedResponseFlipProbability(0.0), 0.5);
  EXPECT_NEAR(RandomizedResponseFlipProbability(1.0),
              1.0 / (1.0 + std::exp(1.0)), 1e-12);
  EXPECT_LT(RandomizedResponseFlipProbability(5.0), 0.01);
}

TEST(RandomizedResponseTest, PreservesLength) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(std::vector<int> out,
                       RandomizedResponse({0, 1, 0, 1}, 1.0, &rng));
  EXPECT_EQ(out.size(), 4u);
  for (int b : out) EXPECT_TRUE(b == 0 || b == 1);
}

TEST(RandomizedResponseTest, EmpiricalFlipRateMatches) {
  Rng rng(kTestSeed);
  double eps = 1.0;
  std::vector<int> x(20000, 1);
  ASSERT_OK_AND_ASSIGN(std::vector<int> y, RandomizedResponse(x, eps, &rng));
  ASSERT_OK_AND_ASSIGN(int flips, HammingDistance(x, y));
  EXPECT_NEAR(flips / 20000.0, RandomizedResponseFlipProbability(eps), 0.01);
}

TEST(RandomizedResponseTest, HighEpsilonNearlyExact) {
  Rng rng(kTestSeed);
  std::vector<int> x(1000, 1);
  ASSERT_OK_AND_ASSIGN(std::vector<int> y, RandomizedResponse(x, 12.0, &rng));
  ASSERT_OK_AND_ASSIGN(int flips, HammingDistance(x, y));
  EXPECT_LE(flips, 1);
}

TEST(RandomizedResponseTest, RejectsInvalidInput) {
  Rng rng(kTestSeed);
  EXPECT_FALSE(RandomizedResponse({2}, 1.0, &rng).ok());
  EXPECT_FALSE(RandomizedResponse({0}, -1.0, &rng).ok());
}

TEST(HammingDistanceTest, Basic) {
  ASSERT_OK_AND_ASSIGN(int d, HammingDistance({0, 1, 1}, {1, 1, 0}));
  EXPECT_EQ(d, 2);
  ASSERT_OK_AND_ASSIGN(int zero, HammingDistance({}, {}));
  EXPECT_EQ(zero, 0);
  EXPECT_FALSE(HammingDistance({0}, {0, 1}).ok());
}

}  // namespace
}  // namespace dpsp
