#include "dp/laplace_mechanism.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(LaplaceScaleTest, ScaleFormula) {
  PrivacyParams params{2.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(double scale, LaplaceScale(3.0, params));
  EXPECT_DOUBLE_EQ(scale, 1.5);
}

TEST(LaplaceScaleTest, NeighborBoundScalesNoise) {
  // The "Scaling" paragraph: rho = 1/V shrinks every bound by 1/V.
  PrivacyParams params{1.0, 0.0, 0.01};
  ASSERT_OK_AND_ASSIGN(double scale, LaplaceScale(5.0, params));
  EXPECT_DOUBLE_EQ(scale, 0.05);
}

TEST(LaplaceScaleTest, RejectsBadSensitivity) {
  PrivacyParams params;
  EXPECT_FALSE(LaplaceScale(0.0, params).ok());
  EXPECT_FALSE(LaplaceScale(-1.0, params).ok());
}

TEST(LaplaceMechanismTest, OutputCentersOnTruth) {
  PrivacyParams params{1.0, 0.0, 1.0};
  Rng rng(kTestSeed);
  std::vector<double> truth{10.0, -5.0, 0.0};
  OnlineStats s0, s1, s2;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_OK_AND_ASSIGN(std::vector<double> out,
                         LaplaceMechanism(truth, 1.0, params, &rng));
    s0.Add(out[0]);
    s1.Add(out[1]);
    s2.Add(out[2]);
  }
  EXPECT_NEAR(s0.mean(), 10.0, 0.05);
  EXPECT_NEAR(s1.mean(), -5.0, 0.05);
  EXPECT_NEAR(s2.mean(), 0.0, 0.05);
  // Variance of Lap(1) is 2.
  EXPECT_NEAR(s0.variance(), 2.0, 0.1);
}

TEST(LaplaceMechanismTest, ScalarConvenienceMatches) {
  PrivacyParams params{0.5, 0.0, 1.0};
  Rng rng(kTestSeed);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_OK_AND_ASSIGN(double out,
                         LaplaceMechanismScalar(7.0, 2.0, params, &rng));
    stats.Add(out);
  }
  EXPECT_NEAR(stats.mean(), 7.0, 0.15);
  // Scale = 2/0.5 = 4; variance 32.
  EXPECT_NEAR(stats.variance(), 32.0, 2.0);
}

TEST(LaplaceTailBoundTest, MatchesEmpiricalTail) {
  Rng rng(kTestSeed);
  double scale = 3.0;
  double gamma = 0.05;
  ASSERT_OK_AND_ASSIGN(double bound, LaplaceTailBound(scale, gamma));
  int exceed = 0;
  int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(rng.Laplace(scale)) > bound) ++exceed;
  }
  EXPECT_NEAR(exceed / static_cast<double>(n), gamma, 0.005);
}

TEST(LaplaceTailBoundTest, RejectsBadArguments) {
  EXPECT_FALSE(LaplaceTailBound(3.0, 0.0).ok());
  EXPECT_FALSE(LaplaceTailBound(3.0, 1.0).ok());
  EXPECT_FALSE(LaplaceTailBound(3.0, -0.5).ok());
  EXPECT_FALSE(LaplaceTailBound(3.0, 1.5).ok());
  EXPECT_FALSE(LaplaceTailBound(0.0, 0.5).ok());
  EXPECT_FALSE(LaplaceSumBound(2.0, 4, 0.0).ok());
  EXPECT_FALSE(LaplaceSumBound(2.0, -1, 0.5).ok());
  EXPECT_FALSE(LaplaceSumBound(-2.0, 4, 0.5).ok());
  EXPECT_OK(ValidateGamma(0.5));
  EXPECT_FALSE(ValidateGamma(0.0).ok());
  EXPECT_FALSE(ValidateGamma(1.0).ok());
}

TEST(LaplaceSumBoundTest, HoldsEmpiricallyWithSlack) {
  // Lemma 3.1: the bound should fail with probability well under gamma.
  Rng rng(kTestSeed);
  double scale = 2.0;
  int t = 16;
  double gamma = 0.1;
  ASSERT_OK_AND_ASSIGN(double bound, LaplaceSumBound(scale, t, gamma));
  int exceed = 0;
  int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    double sum = 0.0;
    for (int j = 0; j < t; ++j) sum += rng.Laplace(scale);
    if (std::fabs(sum) > bound) ++exceed;
  }
  EXPECT_LT(exceed / static_cast<double>(trials), gamma);
}

TEST(LaplaceMechanismTest, EmptyVectorOk) {
  PrivacyParams params;
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(std::vector<double> out,
                       LaplaceMechanism({}, 1.0, params, &rng));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace dpsp
