// Layout checks for the cache-flat released structures: every hot array
// the batch kernels stream (CSR adjacency, the Euler-tour LCA sparse
// table, dyadic block sums, released estimate vectors) is allocated
// through AlignedAllocator and must start on a 64-byte cache-line
// boundary. The gather kernels don't require alignment for correctness —
// this is a perf invariant (no split-line loads at buffer starts, clean
// NUMA page placement), locked here so a refactor back to plain
// std::vector shows up as a test failure instead of a silent regression.

#include <vector>

#include <gtest/gtest.h>

#include "common/aligned.h"
#include "core/bounded_weight.h"
#include "core/hld_oracle.h"
#include "core/oracle_registry.h"
#include "core/range_sums.h"
#include "core/tree_distance.h"
#include "dp/release_context.h"
#include "graph/generators.h"
#include "graph/tree.h"
#include "test_util.h"

namespace dpsp {
namespace {

// An odd, non-power-of-two size so alignment can't fall out of size
// rounding by accident.
constexpr int kNumVertices = 211;

TEST(FlatLayoutAlignmentTest, AlignedVectorAllocatesCacheLines) {
  for (int n : {1, 2, 63, 64, 65, 1000}) {
    AlignedVector<double> v(static_cast<size_t>(n));
    EXPECT_TRUE(IsCacheAligned(v.data())) << "n=" << n;
    AlignedVector<uint32_t> u(static_cast<size_t>(n));
    EXPECT_TRUE(IsCacheAligned(u.data())) << "n=" << n;
  }
}

TEST(FlatLayoutAlignmentTest, GraphCsrArraysAreCacheAligned) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(kNumVertices, &rng));
  EXPECT_TRUE(IsCacheAligned(g.AdjacencyOffsets().data()));
  EXPECT_TRUE(IsCacheAligned(g.AdjacencyHeads().data()));
  EXPECT_TRUE(IsCacheAligned(g.AdjacencyEdges().data()));
}

TEST(FlatLayoutAlignmentTest, EulerTourLcaTableIsCacheAligned) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(kNumVertices, &rng));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  EulerTourLca lca(tree);
  EulerTourLca::FlatView flat = lca.Flat();
  EXPECT_TRUE(IsCacheAligned(flat.first_visit));
  EXPECT_TRUE(IsCacheAligned(flat.log2_floor));
  EXPECT_TRUE(IsCacheAligned(flat.table));
  EXPECT_TRUE(lca.SimdCompatible());
}

TEST(FlatLayoutAlignmentTest, DyadicBlocksAreCacheAligned) {
  Rng rng(kTestSeed);
  std::vector<double> values(777);
  for (double& v : values) v = rng.Uniform(0.0, 1.0);
  NoisyDyadicRangeSums sums(values, 0.5, &rng);
  NoisyDyadicRangeSums::FlatView flat = sums.Flat();
  EXPECT_TRUE(IsCacheAligned(flat.blocks));
  EXPECT_TRUE(IsCacheAligned(flat.level_offset));
}

// Every buffer an oracle reports for NUMA placement is a real released
// array: non-null, non-empty, labelled, and cache-aligned.
void ExpectAlignedReleasedBuffers(const DistanceOracle& oracle,
                                  size_t min_buffers) {
  std::vector<ReleasedBuffer> buffers;
  oracle.AppendReleasedBuffers(&buffers);
  EXPECT_GE(buffers.size(), min_buffers) << oracle.Name();
  for (const ReleasedBuffer& b : buffers) {
    EXPECT_NE(b.data, nullptr) << oracle.Name() << " " << b.label;
    EXPECT_GT(b.bytes, 0u) << oracle.Name() << " " << b.label;
    EXPECT_STRNE(b.label, "") << oracle.Name();
    EXPECT_TRUE(IsCacheAligned(b.data)) << oracle.Name() << " " << b.label;
  }
}

TEST(FlatLayoutAlignmentTest, OracleReleasedBuffersAreCacheAligned) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(kNumVertices, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  for (const char* name : {TreeAllPairsOracle::kName, HldTreeOracle::kName,
                           BoundedWeightOracle::kName}) {
    ASSERT_OK_AND_ASSIGN(
        ReleaseContext ctx,
        ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
    ASSERT_OK_AND_ASSIGN(auto oracle,
                         OracleRegistry::Global().Create(name, g, w, ctx));
    ExpectAlignedReleasedBuffers(*oracle, 2);
  }
}

TEST(FlatLayoutAlignmentTest, BaseOracleReportsNoBuffersByDefault) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto oracle, OracleRegistry::Global().Create(
                                        "per-pair-laplace", g, w, ctx));
  std::vector<ReleasedBuffer> buffers;
  oracle->AppendReleasedBuffers(&buffers);
  EXPECT_TRUE(buffers.empty());
}

TEST(FlatLayoutAlignmentTest, ReleasedEstimatesAreCacheAligned) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(kNumVertices, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       OracleRegistry::Global().Create(
                           TreeAllPairsOracle::kName, g, w, ctx));
  const auto* tree = dynamic_cast<const TreeAllPairsOracle*>(oracle.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_TRUE(IsCacheAligned(tree->release().estimates.data()));
}

}  // namespace
}  // namespace dpsp
