#include "graph/io.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

void ExpectSameTopology(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.directed(), b.directed());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(GraphIoTest, RoundTripUndirected) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(25, 0.2, &rng));
  ASSERT_OK_AND_ASSIGN(Graph parsed, DeserializeGraph(SerializeGraph(g)));
  ExpectSameTopology(g, parsed);
}

TEST(GraphIoTest, RoundTripDirectedAndMultigraph) {
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(3, {{0, 1}, {0, 1}, {2, 1}}, true));
  ASSERT_OK_AND_ASSIGN(Graph parsed, DeserializeGraph(SerializeGraph(g)));
  ExpectSameTopology(g, parsed);
}

TEST(GraphIoTest, RoundTripEmptyGraph) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {}));
  ASSERT_OK_AND_ASSIGN(Graph parsed, DeserializeGraph(SerializeGraph(g)));
  ExpectSameTopology(g, parsed);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::string text =
      "# topology\ndpsp-graph 1\n\ndirected 0\nvertices 2 # two\n"
      "edges 1\n0 1\n";
  ASSERT_OK_AND_ASSIGN(Graph parsed, DeserializeGraph(text));
  EXPECT_EQ(parsed.num_vertices(), 2);
  EXPECT_EQ(parsed.num_edges(), 1);
}

TEST(GraphIoTest, MalformedInputsRejected) {
  EXPECT_FALSE(DeserializeGraph("").ok());
  EXPECT_FALSE(DeserializeGraph("wrong-magic 1\n").ok());
  EXPECT_FALSE(DeserializeGraph("dpsp-graph 2\n").ok());
  EXPECT_FALSE(
      DeserializeGraph("dpsp-graph 1\ndirected 0\nvertices 2\nedges 1\n")
          .ok());  // truncated edges
  EXPECT_FALSE(DeserializeGraph(
                   "dpsp-graph 1\ndirected 0\nvertices 2\nedges 1\n0 5\n")
                   .ok());  // endpoint out of range
  EXPECT_FALSE(DeserializeGraph(
                   "dpsp-graph 1\ndirected 0\nvertices 2\nedges 0\nextra\n")
                   .ok());  // trailing content
}

TEST(WeightsIoTest, RoundTripPreservesValuesExactly) {
  Rng rng(kTestSeed);
  EdgeWeights w{0.0, 1.5, 3.14159265358979, 1e-12, 1e9};
  ASSERT_OK_AND_ASSIGN(EdgeWeights parsed,
                       DeserializeWeights(SerializeWeights(w)));
  ASSERT_EQ(parsed.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) EXPECT_DOUBLE_EQ(parsed[i], w[i]);
}

TEST(WeightsIoTest, EmptyWeights) {
  ASSERT_OK_AND_ASSIGN(EdgeWeights parsed,
                       DeserializeWeights(SerializeWeights({})));
  EXPECT_TRUE(parsed.empty());
}

TEST(WeightsIoTest, MalformedRejected) {
  EXPECT_FALSE(DeserializeWeights("").ok());
  EXPECT_FALSE(DeserializeWeights("dpsp-weights 1\ncount 2\n1.0\n").ok());
  EXPECT_FALSE(
      DeserializeWeights("dpsp-weights 1\ncount 1\nnot-a-number\n").ok());
}

TEST(DotTest, RendersEdgesAndLabels) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  DotOptions options;
  options.name = "demo";
  ASSERT_OK_AND_ASSIGN(std::string dot, ToDot(g, {1.5, 2.5}, options));
  EXPECT_NE(dot.find("graph demo {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"1.5\""), std::string::npos);
}

TEST(DotTest, HighlightsReleasedEdges) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(4));
  DotOptions options;
  options.show_weights = false;
  options.highlight = {0, 2};
  ASSERT_OK_AND_ASSIGN(std::string dot, ToDot(g, {}, options));
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotTest, DirectedUsesArrows) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}, true));
  ASSERT_OK_AND_ASSIGN(std::string dot, ToDot(g, {}, DotOptions{}));
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
}

TEST(DotTest, InvalidInputsRejected) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  EXPECT_FALSE(ToDot(g, {1.0}, DotOptions{}).ok());  // wrong weight count
  DotOptions bad_highlight;
  bad_highlight.highlight = {99};
  EXPECT_FALSE(ToDot(g, {}, bad_highlight).ok());
}

}  // namespace
}  // namespace dpsp
