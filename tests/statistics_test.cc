#include "common/statistics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpsp {
namespace {

TEST(OnlineStatsTest, EmptyDefaults) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 3.5);
  EXPECT_EQ(stats.max(), 3.5);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.sum(), 40.0);
}

TEST(OnlineStatsTest, NegativeValues) {
  OnlineStats stats;
  stats.Add(-10.0);
  stats.Add(10.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.min(), -10.0);
  EXPECT_EQ(stats.max(), 10.0);
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.5), 5.0);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 9.0);
}

TEST(QuantileTest, EmptyGivesZero) { EXPECT_EQ(Quantile({}, 0.5), 0.0); }

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(MaxAbsTest, Basic) {
  EXPECT_DOUBLE_EQ(MaxAbs({-5.0, 3.0}), 5.0);
  EXPECT_EQ(MaxAbs({}), 0.0);
}

TEST(HistogramTest, CountsFallInCorrectBins) {
  Histogram hist(0.0, 10.0, 10);
  hist.Add(0.5);   // bin 0
  hist.Add(9.5);   // bin 9
  hist.Add(5.5);   // bin 5
  EXPECT_EQ(hist.count(0), 1);
  EXPECT_EQ(hist.count(9), 1);
  EXPECT_EQ(hist.count(5), 1);
  EXPECT_EQ(hist.total(), 3);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram hist(0.0, 1.0, 4);
  hist.Add(-100.0);
  hist.Add(100.0);
  EXPECT_EQ(hist.count(0), 1);
  EXPECT_EQ(hist.count(3), 1);
}

TEST(HistogramTest, SmoothedMassSumsToOne) {
  Histogram hist(0.0, 1.0, 5);
  hist.Add(0.1);
  hist.Add(0.1);
  hist.Add(0.9);
  double total = 0.0;
  for (int b = 0; b < hist.bins(); ++b) total += hist.SmoothedMass(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Every bin keeps positive mass even when empty.
  for (int b = 0; b < hist.bins(); ++b) EXPECT_GT(hist.SmoothedMass(b), 0.0);
}

}  // namespace
}  // namespace dpsp
