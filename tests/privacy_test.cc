#include "dp/privacy.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpsp {
namespace {

TEST(PrivacyParamsTest, DefaultsValid) {
  PrivacyParams params;
  EXPECT_OK(params.Validate());
  EXPECT_TRUE(params.pure());
}

TEST(PrivacyParamsTest, RejectsBadEpsilon) {
  PrivacyParams params;
  params.epsilon = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params.epsilon = -1.0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(PrivacyParamsTest, RejectsBadDelta) {
  PrivacyParams params;
  params.delta = 1.0;
  EXPECT_FALSE(params.Validate().ok());
  params.delta = -0.1;
  EXPECT_FALSE(params.Validate().ok());
  params.delta = 1e-6;
  EXPECT_OK(params.Validate());
  EXPECT_FALSE(params.pure());
}

TEST(PrivacyParamsTest, RejectsBadNeighborBound) {
  PrivacyParams params;
  params.neighbor_l1_bound = 0.0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(PrivacyParamsTest, ToStringContainsValues) {
  PrivacyParams params{0.5, 1e-6, 2.0};
  std::string s = params.ToString();
  EXPECT_NE(s.find("0.5"), std::string::npos);
  EXPECT_NE(s.find("1e-06"), std::string::npos);
}

TEST(L1DistanceTest, Computes) {
  ASSERT_OK_AND_ASSIGN(double d,
                       L1Distance({1.0, 2.0, 3.0}, {1.5, 2.0, 1.0}));
  EXPECT_DOUBLE_EQ(d, 2.5);
}

TEST(L1DistanceTest, LengthMismatchFails) {
  EXPECT_FALSE(L1Distance({1.0}, {1.0, 2.0}).ok());
}

TEST(AreNeighborsTest, RespectsBound) {
  PrivacyParams params;  // bound 1.0
  ASSERT_OK_AND_ASSIGN(bool close, AreNeighbors({0.0, 0.0}, {0.5, 0.5},
                                                params));
  EXPECT_TRUE(close);
  ASSERT_OK_AND_ASSIGN(bool far, AreNeighbors({0.0, 0.0}, {0.8, 0.5},
                                              params));
  EXPECT_FALSE(far);
}

TEST(AreNeighborsTest, ScaledBound) {
  PrivacyParams params;
  params.neighbor_l1_bound = 0.1;
  ASSERT_OK_AND_ASSIGN(bool far, AreNeighbors({0.0}, {0.5}, params));
  EXPECT_FALSE(far);
  ASSERT_OK_AND_ASSIGN(bool close, AreNeighbors({0.0}, {0.05}, params));
  EXPECT_TRUE(close);
}

}  // namespace
}  // namespace dpsp
