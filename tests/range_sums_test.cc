#include "core/range_sums.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(LevelsForSizeTest, Values) {
  EXPECT_EQ(NoisyDyadicRangeSums::LevelsForSize(0), 0);
  EXPECT_EQ(NoisyDyadicRangeSums::LevelsForSize(1), 1);
  EXPECT_EQ(NoisyDyadicRangeSums::LevelsForSize(2), 2);
  EXPECT_EQ(NoisyDyadicRangeSums::LevelsForSize(3), 3);
  EXPECT_EQ(NoisyDyadicRangeSums::LevelsForSize(4), 3);
  EXPECT_EQ(NoisyDyadicRangeSums::LevelsForSize(1024), 11);
}

TEST(RangeSumsTest, EmptyVector) {
  Rng rng(kTestSeed);
  NoisyDyadicRangeSums sums({}, 1.0, &rng);
  EXPECT_EQ(sums.num_levels(), 0);
  EXPECT_EQ(sums.num_blocks(), 0);
  ASSERT_OK_AND_ASSIGN(double s, sums.RangeSum(0, 0));
  EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(RangeSumsTest, TinyNoiseRecoversExactSums) {
  Rng rng(kTestSeed);
  std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  NoisyDyadicRangeSums sums(values, 1e-9, &rng);
  for (int lo = 0; lo <= 7; ++lo) {
    for (int hi = lo; hi <= 7; ++hi) {
      double exact = 0.0;
      for (int i = lo; i < hi; ++i) exact += values[static_cast<size_t>(i)];
      ASSERT_OK_AND_ASSIGN(double s, sums.RangeSum(lo, hi));
      EXPECT_NEAR(s, exact, 1e-6) << lo << " " << hi;
    }
  }
}

TEST(RangeSumsTest, SegmentCountBounded) {
  Rng rng(kTestSeed);
  std::vector<double> values(1000, 1.0);
  NoisyDyadicRangeSums sums(values, 1.0, &rng);
  for (int trial = 0; trial < 200; ++trial) {
    int lo = static_cast<int>(rng.UniformInt(0, 1000));
    int hi = static_cast<int>(rng.UniformInt(lo, 1000));
    int segments = 0;
    ASSERT_OK(sums.RangeSum(lo, hi, &segments).status());
    EXPECT_LE(segments, 2 * sums.num_levels());
  }
}

TEST(RangeSumsTest, OutOfBoundsRejected) {
  Rng rng(kTestSeed);
  NoisyDyadicRangeSums sums({1.0, 2.0}, 1.0, &rng);
  EXPECT_FALSE(sums.RangeSum(-1, 1).ok());
  EXPECT_FALSE(sums.RangeSum(0, 3).ok());
  EXPECT_FALSE(sums.RangeSum(2, 1).ok());
}

TEST(RangeSumsTest, NoiseIsPerBlockNotPerQuery) {
  // Querying the same range twice returns the identical noisy value —
  // the release is a fixed object, queries are post-processing.
  Rng rng(kTestSeed);
  std::vector<double> values(64, 1.0);
  NoisyDyadicRangeSums sums(values, 5.0, &rng);
  ASSERT_OK_AND_ASSIGN(double a, sums.RangeSum(3, 37));
  ASSERT_OK_AND_ASSIGN(double b, sums.RangeSum(3, 37));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(RangeSumsTest, BlockCountIsLinear) {
  Rng rng(kTestSeed);
  std::vector<double> values(100, 1.0);
  NoisyDyadicRangeSums sums(values, 1.0, &rng);
  // sum over levels of ceil(100/2^l) < 2 * 100 + levels.
  EXPECT_LT(sums.num_blocks(), 2 * 100 + sums.num_levels());
}

}  // namespace
}  // namespace dpsp
