#include "common/status.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpsp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> r = Status::Ok();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  DPSP_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainedMacroUse(int x) {
  DPSP_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(3).value(), 6);
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_OK_AND_ASSIGN(int v, ChainedMacroUse(5));
  EXPECT_EQ(v, 11);
  EXPECT_FALSE(ChainedMacroUse(-2).ok());
  EXPECT_EQ(ChainedMacroUse(-2).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpsp
