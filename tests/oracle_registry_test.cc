// Conformance suite for the unified oracle registry: every registered
// mechanism family must build through OracleRegistry::Create on a common
// workload and satisfy the shared DistanceOracle contract — zero
// self-distance, symmetry on undirected inputs, batch == serial results,
// and a correctly metered accountant/telemetry trail.

#include "core/oracle_registry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "dp/release_context.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

// An even-length canonical path graph satisfies every registered input
// family at once: it is a path, hence a tree, hence connected, and it has
// a perfect matching (edges 0-1, 2-3, ...) the DP solver handles.
constexpr int kNumVertices = 16;

class RegistryConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    Rng rng(kTestSeed);
    ASSERT_OK_AND_ASSIGN(graph_, MakePathGraph(kNumVertices));
    weights_ = MakeUniformWeights(*graph_, 0.1, 0.9, &rng);
  }

  Result<Graph> graph_ = Status::Internal("unset");
  EdgeWeights weights_;
};

TEST_P(RegistryConformanceTest, BuildsAndSatisfiesOracleContract) {
  const std::string& name = GetParam();
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);

  // The declared loss type picks compatible params: a zCDP-metered
  // (Gaussian-calibrated) mechanism needs approximate params with
  // eps < 1; everything else runs at the pure default.
  PrivacyParams params = spec->loss == LossKind::kZcdp
                             ? PrivacyParams{0.5, 1e-6, 1.0}
                             : PrivacyParams{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(params, kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      auto oracle,
      OracleRegistry::Global().Create(name, *graph_, weights_, ctx));

  // The oracle's self-reported name matches its registry key (modulo a
  // parenthesised variant suffix such as "per-pair-laplace(pure)").
  EXPECT_EQ(oracle->Name().rfind(name, 0), 0u) << oracle->Name();

  // Distance(u, u) == 0 exactly, for every vertex.
  for (VertexId u = 0; u < kNumVertices; ++u) {
    ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(u, u));
    EXPECT_EQ(d, 0.0) << name << " self-distance at " << u;
  }

  // Symmetry on the undirected input.
  for (VertexId u = 0; u < kNumVertices; ++u) {
    for (VertexId v = u + 1; v < kNumVertices; ++v) {
      ASSERT_OK_AND_ASSIGN(double duv, oracle->Distance(u, v));
      ASSERT_OK_AND_ASSIGN(double dvu, oracle->Distance(v, u));
      EXPECT_DOUBLE_EQ(duv, dvu) << name << " asymmetric at (" << u << ","
                                 << v << ")";
    }
  }

  // Batched queries agree exactly with serial queries (queries are
  // post-processing of a fixed released object, so both are
  // deterministic).
  std::vector<VertexPair> pairs;
  for (VertexId u = 0; u < kNumVertices; ++u) {
    for (VertexId v = 0; v < kNumVertices; ++v) {
      pairs.emplace_back(u, v);
    }
  }
  ASSERT_OK_AND_ASSIGN(std::vector<double> batch,
                       oracle->DistanceBatch(pairs));
  ASSERT_EQ(batch.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(double serial,
                         oracle->Distance(pairs[i].first, pairs[i].second));
    EXPECT_EQ(batch[i], serial)
        << name << " batch mismatch at (" << pairs[i].first << ","
        << pairs[i].second << ")";
  }

  // Out-of-range queries fail gracefully in both paths.
  EXPECT_FALSE(oracle->Distance(-1, 0).ok());
  EXPECT_FALSE(oracle->Distance(0, kNumVertices).ok());
  std::vector<VertexPair> bad = {{0, kNumVertices + 3}};
  EXPECT_FALSE(oracle->DistanceBatch(bad).ok());

  // Accountant balance: exactly one metered release for private
  // mechanisms, none for the exact oracle; queries above consumed nothing.
  if (spec->consumes_budget) {
    ASSERT_EQ(ctx.accountant().num_releases(), 1);
    EXPECT_EQ(ctx.accountant().entries()[0].label, name);
    EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().epsilon, params.epsilon);
    EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().delta, params.delta);
  } else {
    EXPECT_EQ(ctx.accountant().num_releases(), 0);
  }

  // Telemetry: one record naming the mechanism, with sane fields.
  ASSERT_EQ(ctx.telemetry().size(), 1u);
  const ReleaseTelemetry& t = ctx.telemetry()[0];
  EXPECT_EQ(t.mechanism.rfind(name, 0), 0u) << t.mechanism;
  EXPECT_GE(t.wall_ms, 0.0);
  if (spec->consumes_budget) {
    EXPECT_DOUBLE_EQ(t.epsilon, params.epsilon);
    EXPECT_GT(t.noise_scale, 0.0);
    // A degenerate covering can release an empty table, so draws and
    // sensitivity are only required to be coherent, not positive.
    EXPECT_GE(t.noise_draws, 0);
    EXPECT_GE(t.sensitivity, 0.0);
  } else {
    EXPECT_EQ(t.epsilon, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredOracles, RegistryConformanceTest,
    ::testing::ValuesIn(OracleRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string id = info.param;
      for (char& ch : id) {
        if (ch == '-') ch = '_';
      }
      return id;
    });

TEST(OracleRegistryTest, AllSevenMechanismFamiliesRegistered) {
  const OracleRegistry& registry = OracleRegistry::Global();
  for (const char* name :
       {"exact", "per-pair-laplace", "synthetic-graph", "tree-recursive",
        "tree-hld", "path-hierarchy", "bounded-weight", "private-mst",
        "private-matching", "bounded-weight-gaussian"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_GE(registry.size(), 10);
}

TEST(OracleRegistryTest, EverySpecDeclaresItsLossType) {
  const OracleRegistry& registry = OracleRegistry::Global();
  for (const std::string& name : registry.Names()) {
    const OracleSpec* spec = registry.Find(name);
    ASSERT_NE(spec, nullptr);
    // Laplace-calibrated mechanisms consume the context's params (kPure
    // declaration); only the Gaussian-calibrated variant is zCDP-metered.
    if (name == "bounded-weight-gaussian") {
      EXPECT_EQ(spec->loss, LossKind::kZcdp) << name;
    } else {
      EXPECT_EQ(spec->loss, LossKind::kPure) << name;
    }
  }
}

TEST(OracleRegistryTest, GaussianVariantIsMeteredAtItsZcdpRate) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(16));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  PrivacyParams params{0.5, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(
      ReleaseContext ctx,
      ReleaseContext::Create(params, kTestSeed, AccountingPolicy::kZcdp));
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       OracleRegistry::Global().Create(
                           "bounded-weight-gaussian", g, w, ctx));
  (void)oracle;
  ASSERT_EQ(ctx.accountant().num_releases(), 1);
  const AccountantEntry& entry = ctx.accountant().entries()[0];
  EXPECT_EQ(entry.loss.kind, LossKind::kZcdp);
  ASSERT_OK_AND_ASSIGN(PrivacyLoss expected,
                       PrivacyLoss::GaussianFromParams(params));
  EXPECT_DOUBLE_EQ(entry.loss.rho, expected.rho);
  // The telemetry mirrors the charged loss.
  ASSERT_EQ(ctx.telemetry().size(), 1u);
  EXPECT_EQ(ctx.telemetry()[0].loss.kind, LossKind::kZcdp);
  EXPECT_DOUBLE_EQ(ctx.telemetry()[0].epsilon, params.epsilon);
}

TEST(OracleRegistryTest, UnknownNameIsNotFound) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  Result<std::unique_ptr<DistanceOracle>> result =
      OracleRegistry::Global().Create("no-such-oracle", g, w, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(OracleRegistryTest, RejectsDuplicateAndInvalidRegistrations) {
  OracleRegistry registry;
  OracleSpec spec;
  spec.name = "custom";
  spec.factory = [](const Graph& g, const EdgeWeights& w,
                    ReleaseContext& ctx) {
    return MakeExactOracle(g, w, ctx);
  };
  ASSERT_OK(registry.Register(spec));
  EXPECT_FALSE(registry.Register(spec).ok());  // duplicate

  OracleSpec unnamed;
  unnamed.factory = spec.factory;
  EXPECT_FALSE(registry.Register(unnamed).ok());

  OracleSpec no_factory;
  no_factory.name = "null-factory";
  EXPECT_FALSE(registry.Register(no_factory).ok());
}

TEST(OracleRegistryTest, NewRegistrationIsCreatableImmediately) {
  // Adding a mechanism to the pipeline is one Register call.
  OracleRegistry registry;
  OracleSpec spec;
  spec.name = "exact-copy";
  spec.consumes_budget = false;
  spec.factory = [](const Graph& g, const EdgeWeights& w,
                    ReleaseContext& ctx) {
    return MakeExactOracle(g, w, ctx);
  };
  ASSERT_OK(registry.Register(std::move(spec)));

  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(6));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       registry.Create("exact-copy", g, w, ctx));
  ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(0, 5));
  EXPECT_GT(d, 0.0);
}

TEST(OracleRegistryTest, NamesForInputRespectsTheSpecificityChain) {
  const OracleRegistry& registry = OracleRegistry::Global();

  // A generic connected graph only gets the any-connected mechanisms.
  std::vector<std::string> generic =
      registry.NamesForInput(OracleInput::kAnyConnected);
  for (const char* excluded : {"tree-recursive", "tree-hld",
                               "path-hierarchy", "private-matching"}) {
    for (const std::string& name : generic) EXPECT_NE(name, excluded);
  }

  // A tree additionally gets the tree mechanisms but not the path one.
  std::vector<std::string> tree = registry.NamesForInput(OracleInput::kTree);
  auto contains = [](const std::vector<std::string>& names,
                     const char* name) {
    for (const std::string& n : names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(tree, "tree-recursive"));
  EXPECT_TRUE(contains(tree, "tree-hld"));
  EXPECT_FALSE(contains(tree, "path-hierarchy"));

  // A path gets everything except perfect-matching, unless the caller
  // vouches for one.
  std::vector<std::string> path = registry.NamesForInput(OracleInput::kPath);
  EXPECT_TRUE(contains(path, "path-hierarchy"));
  EXPECT_TRUE(contains(path, "tree-recursive"));
  EXPECT_FALSE(contains(path, "private-matching"));
  std::vector<std::string> path_matchable =
      registry.NamesForInput(OracleInput::kPath,
                             /*has_perfect_matching=*/true);
  EXPECT_TRUE(contains(path_matchable, "private-matching"));
  EXPECT_EQ(path_matchable.size(), OracleRegistry::Global().Names().size());
}

}  // namespace
}  // namespace dpsp
