// Tests for the sharded batch execution engine: every shard policy must
// produce results bit-identical to the serial DistanceInto reference path
// across all registered mechanisms, and a sharded build pipeline's
// Fork/AbsorbShard ledger must equal the unsharded one.

#include "serve/batch_executor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/bounded_weight.h"
#include "core/hld_oracle.h"
#include "core/oracle_registry.h"
#include "core/tree_distance.h"
#include "dp/release_context.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

constexpr int kNumVertices = 32;  // even path: satisfies every input family

std::vector<VertexPair> SampleTestPairs(int n, int count, Rng* rng) {
  std::vector<VertexPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  while (static_cast<int>(pairs.size()) < count) {
    auto u = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    auto v = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    pairs.emplace_back(u, v);
  }
  return pairs;
}

class ExecutorConformanceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(ExecutorConformanceTest, ShardedBitIdenticalToSerial) {
  const std::string& name = GetParam();
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(kNumVertices));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  // A zCDP-metered (Gaussian-calibrated) mechanism needs approximate
  // params with eps < 1; everything else runs at the pure default.
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);
  PrivacyParams params = spec->loss == LossKind::kZcdp
                             ? PrivacyParams{0.5, 1e-6, 1.0}
                             : PrivacyParams{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(params, kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      auto oracle, OracleRegistry::Global().Create(name, g, w, ctx));

  std::vector<VertexPair> pairs =
      SampleTestPairs(kNumVertices, 3000, &rng);
  // Serial reference: one DistanceInto over the whole span.
  ASSERT_OK_AND_ASSIGN(std::vector<double> serial,
                       DistanceBatchOf(*oracle, pairs, /*max_threads=*/1));

  // Contiguous shards, forced fan-out.
  BatchExecutorOptions options;
  options.num_shards = 7;
  options.max_threads = 4;
  options.min_shard_pairs = 1;
  BatchExecutor contiguous(options);
  EXPECT_GT(contiguous.PlannedShardCount(pairs.size()), 1);
  ASSERT_OK_AND_ASSIGN(std::vector<double> sharded,
                       contiguous.Execute(*oracle, pairs));
  ASSERT_EQ(sharded.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(sharded[i], serial[i]) << name << " at pair " << i;
  }

  // Keyed shards (every vertex its own cell — the worst-case key spread).
  BatchExecutor keyed(options);
  std::vector<int> cells(kNumVertices);
  for (int v = 0; v < kNumVertices; ++v) cells[static_cast<size_t>(v)] = v;
  keyed.SetShardCells(std::move(cells));
  ASSERT_OK_AND_ASSIGN(std::vector<double> keyed_out,
                       keyed.Execute(*oracle, pairs));
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(keyed_out[i], serial[i]) << name << " keyed at pair " << i;
  }

  // Errors propagate from shard kernels.
  std::vector<VertexPair> bad = pairs;
  bad[bad.size() / 2] = {0, kNumVertices + 5};
  EXPECT_FALSE(contiguous.Execute(*oracle, bad).ok());
  EXPECT_FALSE(keyed.Execute(*oracle, bad).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredOracles, ExecutorConformanceTest,
    ::testing::ValuesIn(OracleRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string id = info.param;
      for (char& ch : id) {
        if (ch == '-') ch = '_';
      }
      return id;
    });

TEST(BatchExecutorTest, ComponentShardingOnForest) {
  // Two components; the exact oracle answers cross-component pairs with
  // infinity, and component sharding must preserve that verbatim.
  ASSERT_OK_AND_ASSIGN(
      Graph g, Graph::Create(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}}));
  EdgeWeights w = {1.0, 2.0, 3.0, 4.0};
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       OracleRegistry::Global().Create("exact", g, w, ctx));

  std::vector<VertexPair> pairs;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = 0; v < 6; ++v) pairs.emplace_back(u, v);
  }
  ASSERT_OK_AND_ASSIGN(std::vector<double> serial,
                       DistanceBatchOf(*oracle, pairs, /*max_threads=*/1));

  BatchExecutorOptions options;
  options.num_shards = 2;
  options.min_shard_pairs = 1;
  BatchExecutor executor(options);
  executor.SetShardCells(ComponentCells(g));
  ASSERT_OK_AND_ASSIGN(std::vector<double> sharded,
                       executor.Execute(*oracle, pairs));
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(sharded[i], serial[i]) << "pair " << i;
  }
}

TEST(BatchExecutorTest, CoveringCellShardingOnBoundedWeight) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(8, 8));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 1.0, &rng);
  BoundedWeightOptions options;
  options.params = PrivacyParams{1.0, 0.0, 1.0};
  options.k = 2;
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       BoundedWeightOracle::Build(g, w, options, &rng));

  std::vector<VertexPair> pairs = SampleTestPairs(64, 2000, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<double> serial,
                       DistanceBatchOf(*oracle, pairs, /*max_threads=*/1));

  BatchExecutorOptions exec_options;
  exec_options.num_shards = 4;
  exec_options.min_shard_pairs = 1;
  BatchExecutor executor(exec_options);
  executor.SetShardCells(CoveringCells(oracle->covering()));
  ASSERT_OK_AND_ASSIGN(std::vector<double> sharded,
                       executor.Execute(*oracle, pairs));
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(sharded[i], serial[i]) << "pair " << i;
  }
}

TEST(BatchExecutorTest, ParallelBoundedWeightBuildIsThreadCountInvariant) {
  Rng data_rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(10, 10));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 1.0, &data_rng);
  BoundedWeightOptions serial_options;
  serial_options.params = PrivacyParams{1.0, 0.0, 1.0};
  serial_options.k = 3;
  serial_options.build_threads = 1;
  BoundedWeightOptions parallel_options = serial_options;
  parallel_options.build_threads = 8;

  // Same noise seed => the released tables must match exactly: the
  // Dijkstra fan-out happens before any noise is drawn.
  Rng rng_a(kTestSeed + 1);
  Rng rng_b(kTestSeed + 1);
  ASSERT_OK_AND_ASSIGN(auto serial_oracle,
                       BoundedWeightOracle::Build(g, w, serial_options,
                                                  &rng_a));
  ASSERT_OK_AND_ASSIGN(auto parallel_oracle,
                       BoundedWeightOracle::Build(g, w, parallel_options,
                                                  &rng_b));
  for (VertexId u = 0; u < 100; u += 7) {
    for (VertexId v = 0; v < 100; v += 11) {
      ASSERT_OK_AND_ASSIGN(double a, serial_oracle->Distance(u, v));
      ASSERT_OK_AND_ASSIGN(double b, parallel_oracle->Distance(u, v));
      EXPECT_EQ(a, b) << "(" << u << "," << v << ")";
    }
  }
}

TEST(BatchExecutorTest, EmptyBatchAndTinyBatchCollapse) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       OracleRegistry::Global().Create("exact", g, w, ctx));

  BatchExecutor executor;  // default options: min_shard_pairs = 2048
  ASSERT_OK_AND_ASSIGN(std::vector<double> empty,
                       executor.Execute(*oracle, {}));
  EXPECT_TRUE(empty.empty());

  // A tiny batch stays on one shard (no fan-out overhead).
  EXPECT_EQ(executor.PlannedShardCount(16), 1);
  std::vector<VertexPair> pairs = {{0, 7}, {3, 4}};
  ASSERT_OK_AND_ASSIGN(std::vector<double> out,
                       executor.Execute(*oracle, pairs));
  ASSERT_OK_AND_ASSIGN(double d07, oracle->Distance(0, 7));
  EXPECT_EQ(out[0], d07);
}

TEST(BatchExecutorTest, ForkAbsorbLedgerEqualsUnsharded) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(kNumVertices));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};

  // Unsharded reference: two releases through one context.
  ASSERT_OK_AND_ASSIGN(ReleaseContext unsharded,
                       ReleaseContext::Create(params, kTestSeed));
  ASSERT_OK(TreeAllPairsOracle::Build(g, w, unsharded).status());
  ASSERT_OK(HldTreeOracle::Build(g, w, unsharded).status());

  // Sharded: each release built through a forked child, then absorbed.
  ASSERT_OK_AND_ASSIGN(ReleaseContext parent,
                       ReleaseContext::Create(params, kTestSeed));
  ReleaseContext shard_a = parent.Fork();
  ReleaseContext shard_b = parent.Fork();
  ASSERT_OK(TreeAllPairsOracle::Build(g, w, shard_a).status());
  ASSERT_OK(HldTreeOracle::Build(g, w, shard_b).status());
  ASSERT_OK(parent.AbsorbShard(shard_a));
  ASSERT_OK(parent.AbsorbShard(shard_b));

  EXPECT_EQ(parent.accountant().num_releases(),
            unsharded.accountant().num_releases());
  EXPECT_DOUBLE_EQ(parent.accountant().BasicTotal().epsilon,
                   unsharded.accountant().BasicTotal().epsilon);
  EXPECT_DOUBLE_EQ(parent.accountant().BasicTotal().delta,
                   unsharded.accountant().BasicTotal().delta);
  ASSERT_EQ(parent.telemetry().size(), unsharded.telemetry().size());
  for (size_t i = 0; i < parent.telemetry().size(); ++i) {
    EXPECT_EQ(parent.telemetry()[i].mechanism,
              unsharded.telemetry()[i].mechanism);
  }
}

TEST(BatchExecutorTest, AbsorbShardRespectsTotalBudgetAtomically) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(kNumVertices));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};

  ASSERT_OK_AND_ASSIGN(ReleaseContext parent,
                       ReleaseContext::Create(params, kTestSeed));
  parent.SetTotalBudget(PrivacyParams{1.5, 0.0, 1.0});

  // A shard carrying two eps=1 releases cannot fit the eps=1.5 ceiling.
  ReleaseContext shard = parent.Fork();
  ASSERT_OK(TreeAllPairsOracle::Build(g, w, shard).status());
  ASSERT_OK(HldTreeOracle::Build(g, w, shard).status());
  Status status = parent.AbsorbShard(shard);
  EXPECT_FALSE(status.ok());
  // All-or-nothing: the failed absorb left the parent ledger untouched.
  EXPECT_EQ(parent.accountant().num_releases(), 0);
  EXPECT_TRUE(parent.telemetry().empty());
}

TEST(BatchExecutorTest, DegenerateBatchesAreWellDefinedOnEveryPath) {
  // Regression: empty and single-element batches must produce well-defined
  // results with no worker spawn on every execution path — the parallel
  // DistanceBatch, the forced-serial reference, and both executor shard
  // policies (an empty vector's data() is null, so any path that blindly
  // hands the kernel a pointer would be UB).
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(PrivacyParams{}, kTestSeed));
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       OracleRegistry::Global().Create("exact", g, w, ctx));
  ASSERT_OK_AND_ASSIGN(double reference, oracle->Distance(2, 6));
  std::vector<VertexPair> single = {{2, 6}};

  // Oracle-level batch APIs.
  ASSERT_OK_AND_ASSIGN(std::vector<double> empty_batch,
                       oracle->DistanceBatch({}));
  EXPECT_TRUE(empty_batch.empty());
  ASSERT_OK_AND_ASSIGN(std::vector<double> single_batch,
                       oracle->DistanceBatch(single));
  ASSERT_EQ(single_batch.size(), 1u);
  EXPECT_EQ(single_batch[0], reference);
  ASSERT_OK_AND_ASSIGN(std::vector<double> forced_parallel,
                       DistanceBatchOf(*oracle, single, /*max_threads=*/8));
  EXPECT_EQ(forced_parallel[0], reference);

  // Executor with aggressive fan-out settings: degenerate batches still
  // collapse to the inline path.
  BatchExecutorOptions options;
  options.num_shards = 8;
  options.max_threads = 8;
  options.min_shard_pairs = 1;
  BatchExecutor contiguous(options);
  EXPECT_EQ(contiguous.PlannedShardCount(0), 1);
  ASSERT_OK_AND_ASSIGN(std::vector<double> exec_empty,
                       contiguous.Execute(*oracle, {}));
  EXPECT_TRUE(exec_empty.empty());
  ASSERT_OK_AND_ASSIGN(std::vector<double> exec_single,
                       contiguous.Execute(*oracle, single));
  ASSERT_EQ(exec_single.size(), 1u);
  EXPECT_EQ(exec_single[0], reference);

  BatchExecutor keyed(options);
  keyed.SetShardCells(ComponentCells(g));
  ASSERT_OK_AND_ASSIGN(std::vector<double> keyed_empty,
                       keyed.Execute(*oracle, {}));
  EXPECT_TRUE(keyed_empty.empty());
  ASSERT_OK_AND_ASSIGN(std::vector<double> keyed_single,
                       keyed.Execute(*oracle, single));
  ASSERT_EQ(keyed_single.size(), 1u);
  EXPECT_EQ(keyed_single[0], reference);

  // A single INVALID pair still reports the kernel's error, not UB.
  std::vector<VertexPair> bad = {{0, 99}};
  EXPECT_FALSE(contiguous.Execute(*oracle, bad).ok());
  EXPECT_FALSE(DistanceBatchOf(*oracle, bad, 1).ok());
}

}  // namespace
}  // namespace dpsp
