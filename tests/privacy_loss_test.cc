// Tests for the PrivacyLoss value type and its exact conversions: pure-DP
// to zCDP, zCDP to (eps, delta) at a caller-chosen delta, and the Gaussian
// mechanism's natural rho rate.

#include "dp/privacy_loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/gaussian_mechanism.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(PrivacyLossTest, PureCarriesExactZcdpRate) {
  PrivacyLoss loss = PrivacyLoss::Pure(0.4);
  EXPECT_EQ(loss.kind, LossKind::kPure);
  EXPECT_DOUBLE_EQ(loss.epsilon, 0.4);
  EXPECT_DOUBLE_EQ(loss.delta, 0.0);
  ASSERT_OK_AND_ASSIGN(double rho, loss.Rho());
  EXPECT_DOUBLE_EQ(rho, 0.5 * 0.4 * 0.4);
  ASSERT_OK_AND_ASSIGN(PrivacyParams view, loss.ApproxDp(1e-6));
  EXPECT_DOUBLE_EQ(view.epsilon, 0.4);
  EXPECT_DOUBLE_EQ(view.delta, 0.0);
}

TEST(PrivacyLossTest, ApproximateHasNoZcdpRate) {
  PrivacyLoss loss = PrivacyLoss::Approximate(0.4, 1e-6);
  EXPECT_EQ(loss.kind, LossKind::kApproximate);
  EXPECT_FALSE(loss.has_rho());
  EXPECT_FALSE(loss.Rho().ok());
  ASSERT_OK_AND_ASSIGN(PrivacyParams view, loss.ApproxDp(1e-5));
  EXPECT_DOUBLE_EQ(view.epsilon, 0.4);
  EXPECT_DOUBLE_EQ(view.delta, 1e-6);
  // A target delta tighter than the recorded certificate is refused.
  EXPECT_FALSE(loss.ApproxDp(1e-9).ok());
}

TEST(PrivacyLossTest, ZcdpConversionMatchesClosedForm) {
  const double rho = 0.02;
  const double delta = 1e-7;
  ASSERT_OK_AND_ASSIGN(PrivacyLoss loss, PrivacyLoss::Zcdp(rho, delta));
  ASSERT_OK_AND_ASSIGN(PrivacyParams view, loss.ApproxDp(delta));
  EXPECT_NEAR(view.epsilon, rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta)),
              1e-15);
  EXPECT_DOUBLE_EQ(view.delta, delta);
  EXPECT_DOUBLE_EQ(loss.epsilon, view.epsilon);  // certificate at delta
}

TEST(PrivacyLossTest, ZcdpEpsilonMonotoneInRho) {
  // Satellite property: the zCDP -> (eps, delta) conversion is strictly
  // increasing in rho at every target delta.
  for (double delta : {1e-9, 1e-6, 1e-3, 0.1}) {
    double prev = 0.0;
    for (double rho = 1e-6; rho < 1e3; rho *= 2.0) {
      double eps = ZcdpEpsilon(rho, delta);
      EXPECT_GT(eps, prev) << "rho=" << rho << " delta=" << delta;
      prev = eps;
    }
  }
}

TEST(PrivacyLossTest, ZcdpEpsilonMonotoneDecreasingInDelta) {
  // Loosening the target delta can only shrink the certified epsilon.
  double prev = ZcdpEpsilon(0.05, 1e-12);
  for (double delta : {1e-9, 1e-6, 1e-3, 0.1}) {
    double eps = ZcdpEpsilon(0.05, delta);
    EXPECT_LT(eps, prev) << "delta=" << delta;
    prev = eps;
  }
}

TEST(PrivacyLossTest, GaussianRhoIsSensitivitySquaredOverTwoSigmaSquared) {
  EXPECT_DOUBLE_EQ(GaussianRho(2.0, 4.0), 4.0 / 32.0);
  ASSERT_OK_AND_ASSIGN(PrivacyLoss loss,
                       PrivacyLoss::Gaussian(2.0, 4.0, 0.5, 1e-6));
  EXPECT_EQ(loss.kind, LossKind::kZcdp);
  ASSERT_OK_AND_ASSIGN(double rho, loss.Rho());
  EXPECT_DOUBLE_EQ(rho, 0.125);
  EXPECT_DOUBLE_EQ(loss.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(loss.delta, 1e-6);
}

TEST(PrivacyLossTest, GaussianFromParamsMatchesClassicCalibration) {
  // rho must equal s^2 / (2 sigma^2) for the sigma GaussianSigma picks —
  // at ANY sensitivity, because both scale together.
  PrivacyParams params{0.5, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivacyLoss loss,
                       PrivacyLoss::GaussianFromParams(params));
  for (double s : {1.0, 3.0, 17.5}) {
    ASSERT_OK_AND_ASSIGN(double sigma, GaussianSigma(s, params));
    EXPECT_NEAR(loss.rho, GaussianRho(s * params.neighbor_l1_bound, sigma),
                1e-15)
        << "s=" << s;
  }
  // The classic calibration's domain is enforced.
  EXPECT_FALSE(
      PrivacyLoss::GaussianFromParams(PrivacyParams{1.5, 1e-6, 1.0}).ok());
  EXPECT_FALSE(
      PrivacyLoss::GaussianFromParams(PrivacyParams{0.5, 0.0, 1.0}).ok());
}

TEST(PrivacyLossTest, FactoriesValidateArguments) {
  EXPECT_FALSE(PrivacyLoss::Zcdp(0.0).ok());
  EXPECT_FALSE(PrivacyLoss::Zcdp(-1.0).ok());
  EXPECT_FALSE(PrivacyLoss::Zcdp(0.1, 0.0).ok());
  EXPECT_FALSE(PrivacyLoss::Zcdp(0.1, 1.0).ok());
  EXPECT_FALSE(PrivacyLoss::Gaussian(0.0, 1.0, 0.5, 1e-6).ok());
  EXPECT_FALSE(PrivacyLoss::Gaussian(1.0, 0.0, 0.5, 1e-6).ok());
  EXPECT_FALSE(PrivacyLoss::Gaussian(1.0, 1.0, 0.5, 0.0).ok());
  // A default-constructed loss is invalid (the ReleaseContext sentinel).
  EXPECT_FALSE(PrivacyLoss{}.Validate().ok());
  EXPECT_OK(PrivacyLoss::Pure(1.0).Validate());
  EXPECT_OK(PrivacyLoss::Approximate(1.0, 1e-6).Validate());
}

TEST(PrivacyLossTest, FromParamsPicksTheNaturalKind) {
  EXPECT_EQ(PrivacyLoss::FromParams(PrivacyParams{1.0, 0.0, 1.0}).kind,
            LossKind::kPure);
  EXPECT_EQ(PrivacyLoss::FromParams(PrivacyParams{1.0, 1e-6, 1.0}).kind,
            LossKind::kApproximate);
}

}  // namespace
}  // namespace dpsp
