#include "dp/accountant.h"

#include <gtest/gtest.h>

#include "dp/composition.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(AccountantTest, EmptyTotalsAreZero) {
  PrivacyAccountant accountant;
  EXPECT_EQ(accountant.num_releases(), 0);
  PrivacyParams total = accountant.BasicTotal();
  EXPECT_DOUBLE_EQ(total.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(total.delta, 0.0);
  EXPECT_FALSE(accountant.AdvancedTotal(1e-6).ok());
}

TEST(AccountantTest, BasicTotalSums) {
  PrivacyAccountant accountant;
  ASSERT_OK(accountant.Record("tree release", 0.5, 0.0));
  ASSERT_OK(accountant.Record("path release", 0.25, 1e-6));
  PrivacyParams total = accountant.BasicTotal();
  EXPECT_DOUBLE_EQ(total.epsilon, 0.75);
  EXPECT_DOUBLE_EQ(total.delta, 1e-6);
  EXPECT_EQ(accountant.num_releases(), 2);
}

TEST(AccountantTest, RejectsInvalidEntries) {
  PrivacyAccountant accountant;
  EXPECT_FALSE(accountant.Record("bad", 0.0, 0.0).ok());
  EXPECT_FALSE(accountant.Record("bad", 1.0, 1.0).ok());
  EXPECT_FALSE(accountant.Record("bad", -1.0, 0.0).ok());
  EXPECT_EQ(accountant.num_releases(), 0);
}

TEST(AccountantTest, AdvancedTotalMatchesLemma34) {
  PrivacyAccountant accountant;
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(accountant.Record("release", 0.05, 0.0));
  }
  ASSERT_OK_AND_ASSIGN(PrivacyParams advanced,
                       accountant.AdvancedTotal(1e-6));
  EXPECT_NEAR(advanced.epsilon, AdvancedCompositionEpsilon(50, 0.05, 1e-6),
              1e-12);
  EXPECT_DOUBLE_EQ(advanced.delta, 1e-6);
}

TEST(AccountantTest, BestTotalPicksSmallerEpsilon) {
  // 2 releases: basic wins. 200 releases: advanced wins.
  PrivacyAccountant small;
  ASSERT_OK(small.Record("a", 0.1, 0.0));
  ASSERT_OK(small.Record("b", 0.1, 0.0));
  EXPECT_DOUBLE_EQ(small.BestTotal(1e-6).epsilon, 0.2);

  PrivacyAccountant large;
  for (int i = 0; i < 200; ++i) ASSERT_OK(large.Record("r", 0.1, 0.0));
  EXPECT_LT(large.BestTotal(1e-6).epsilon, 20.0);
  EXPECT_NEAR(large.BestTotal(1e-6).epsilon,
              AdvancedCompositionEpsilon(200, 0.1, 1e-6), 1e-12);
}

TEST(AccountantTest, WithinBudget) {
  PrivacyAccountant accountant;
  ASSERT_OK(accountant.Record("a", 0.4, 0.0));
  ASSERT_OK(accountant.Record("b", 0.4, 0.0));
  PrivacyParams budget{1.0, 1e-5, 1.0};
  EXPECT_TRUE(accountant.WithinBudget(budget, 1e-6));
  ASSERT_OK(accountant.Record("c", 0.4, 0.0));
  EXPECT_FALSE(accountant.WithinBudget(budget, 1e-6));
}

TEST(AccountantTest, RecordFromPrivacyParams) {
  PrivacyAccountant accountant;
  PrivacyParams params{0.7, 1e-8, 1.0};
  ASSERT_OK(accountant.Record("mechanism", params));
  EXPECT_DOUBLE_EQ(accountant.BasicTotal().epsilon, 0.7);
}

TEST(AccountantTest, ToStringListsEntries) {
  PrivacyAccountant accountant;
  ASSERT_OK(accountant.Record("morning refresh", 0.5, 0.0));
  std::string s = accountant.ToString();
  EXPECT_NE(s.find("morning refresh"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

}  // namespace
}  // namespace dpsp
