#include "dp/accountant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/composition.h"
#include "dp/gaussian_mechanism.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(AccountantTest, EmptyTotalsAreZero) {
  BasicAccountant accountant;
  EXPECT_EQ(accountant.num_releases(), 0);
  PrivacyParams total = accountant.BasicTotal();
  EXPECT_DOUBLE_EQ(total.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(total.delta, 0.0);
  EXPECT_FALSE(accountant.AdvancedTotal(1e-6).ok());
}

TEST(AccountantTest, BasicTotalSums) {
  BasicAccountant accountant;
  ASSERT_OK(accountant.Record("tree release", 0.5, 0.0));
  ASSERT_OK(accountant.Record("path release", 0.25, 1e-6));
  PrivacyParams total = accountant.BasicTotal();
  EXPECT_DOUBLE_EQ(total.epsilon, 0.75);
  EXPECT_DOUBLE_EQ(total.delta, 1e-6);
  EXPECT_EQ(accountant.num_releases(), 2);
}

TEST(AccountantTest, RejectsInvalidEntries) {
  BasicAccountant accountant;
  EXPECT_FALSE(accountant.Record("bad", 0.0, 0.0).ok());
  EXPECT_FALSE(accountant.Record("bad", 1.0, 1.0).ok());
  EXPECT_FALSE(accountant.Record("bad", -1.0, 0.0).ok());
  EXPECT_EQ(accountant.num_releases(), 0);
}

TEST(AccountantTest, AdvancedTotalMatchesLemma34) {
  BasicAccountant accountant;
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(accountant.Record("release", 0.05, 0.0));
  }
  ASSERT_OK_AND_ASSIGN(PrivacyParams advanced,
                       accountant.AdvancedTotal(1e-6));
  EXPECT_NEAR(advanced.epsilon, AdvancedCompositionEpsilon(50, 0.05, 1e-6),
              1e-12);
  EXPECT_DOUBLE_EQ(advanced.delta, 1e-6);
}

TEST(AccountantTest, AdvancedTotalRefusesHeterogeneousLedgerWithTrace) {
  // The old behaviour silently uniformized every release to (eps_max,
  // delta_max), certifying a valid but misleadingly loose total. Now a
  // heterogeneous ledger is an error whose detail names the maximal entry
  // so the caller can see what uniformization would have used.
  BasicAccountant accountant;
  ASSERT_OK(accountant.Record("big release", 0.5, 0.0));
  ASSERT_OK(accountant.Record("small release", 0.1, 0.0));
  Result<PrivacyParams> advanced = accountant.AdvancedTotal(1e-6);
  ASSERT_FALSE(advanced.ok());
  EXPECT_EQ(advanced.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(advanced.status().message().find("big release"),
            std::string::npos)
      << advanced.status().message();
  EXPECT_NE(advanced.status().message().find("small release"),
            std::string::npos)
      << advanced.status().message();

  // BestTotal falls back to the (always valid) basic total.
  EXPECT_DOUBLE_EQ(accountant.BestTotal(1e-6).epsilon, 0.6);
}

TEST(AccountantTest, HeterogeneousLedgerStillAdmitsThroughUniformizedBound) {
  // The strict AdvancedTotal refuses to REPORT a heterogeneous ledger's
  // uniformized total, but admission must keep the historical rule: the
  // (eps_max, delta_max) uniformization is a sound upper bound, so a
  // budget it fits is still admitted even when the basic total does not.
  BasicAccountant accountant;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(accountant.Record("small", 0.05, 0.0));
  }
  ASSERT_OK(accountant.Record("slightly bigger", 0.06, 0.0));
  EXPECT_FALSE(accountant.AdvancedTotal(1e-6).ok());  // strict reporting
  PrivacyParams budget{4.0, 1e-5, 1.0};
  // Basic total is 5.06 > 4; uniformized advanced at eps_max=0.06 is
  // ~3.5 < 4 — the ledger fits exactly as it did before the strictness
  // fix.
  EXPECT_GT(accountant.BasicTotal().epsilon, budget.epsilon);
  EXPECT_LT(AdvancedCompositionEpsilon(101, 0.06, 1e-6), budget.epsilon);
  EXPECT_TRUE(accountant.WithinBudget(budget, 1e-6));
}

TEST(AccountantTest, BestTotalPicksSmallerEpsilon) {
  // 2 releases: basic wins. 200 releases: advanced wins.
  BasicAccountant small;
  ASSERT_OK(small.Record("a", 0.1, 0.0));
  ASSERT_OK(small.Record("b", 0.1, 0.0));
  EXPECT_DOUBLE_EQ(small.BestTotal(1e-6).epsilon, 0.2);

  BasicAccountant large;
  for (int i = 0; i < 200; ++i) ASSERT_OK(large.Record("r", 0.1, 0.0));
  EXPECT_LT(large.BestTotal(1e-6).epsilon, 20.0);
  EXPECT_NEAR(large.BestTotal(1e-6).epsilon,
              AdvancedCompositionEpsilon(200, 0.1, 1e-6), 1e-12);
}

TEST(AccountantTest, WithinBudget) {
  BasicAccountant accountant;
  ASSERT_OK(accountant.Record("a", 0.4, 0.0));
  ASSERT_OK(accountant.Record("b", 0.4, 0.0));
  PrivacyParams budget{1.0, 1e-5, 1.0};
  EXPECT_TRUE(accountant.WithinBudget(budget, 1e-6));
  ASSERT_OK(accountant.Record("c", 0.4, 0.0));
  EXPECT_FALSE(accountant.WithinBudget(budget, 1e-6));
}

TEST(AccountantTest, RecordFromPrivacyParams) {
  BasicAccountant accountant;
  PrivacyParams params{0.7, 1e-8, 1.0};
  ASSERT_OK(accountant.Record("mechanism", params));
  EXPECT_DOUBLE_EQ(accountant.BasicTotal().epsilon, 0.7);
}

TEST(AccountantTest, ToStringListsEntries) {
  BasicAccountant accountant;
  ASSERT_OK(accountant.Record("morning refresh", 0.5, 0.0));
  std::string s = accountant.ToString();
  EXPECT_NE(s.find("morning refresh"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

// ----------------------------------------------------- pluggable policies --

TEST(AccountantTest, CreateReturnsTheRequestedPolicy) {
  for (AccountingPolicy policy :
       {AccountingPolicy::kBasic, AccountingPolicy::kAdvanced,
        AccountingPolicy::kZcdp}) {
    std::unique_ptr<Accountant> accountant = Accountant::Create(policy);
    ASSERT_NE(accountant, nullptr);
    EXPECT_EQ(accountant->policy(), policy);
    EXPECT_EQ(accountant->num_releases(), 0);
  }
  EXPECT_STREQ(AccountingPolicyName(AccountingPolicy::kBasic), "basic");
  EXPECT_STREQ(AccountingPolicyName(AccountingPolicy::kAdvanced), "advanced");
  EXPECT_STREQ(AccountingPolicyName(AccountingPolicy::kZcdp), "zcdp");
}

TEST(AccountantTest, CloneCopiesTheLedger) {
  std::unique_ptr<Accountant> accountant =
      Accountant::Create(AccountingPolicy::kAdvanced);
  ASSERT_OK(accountant->Record("a", 0.5, 0.0));
  std::unique_ptr<Accountant> clone = accountant->Clone();
  ASSERT_OK(clone->Record("b", 0.5, 0.0));
  EXPECT_EQ(accountant->num_releases(), 1);
  EXPECT_EQ(clone->num_releases(), 2);
  EXPECT_EQ(clone->policy(), AccountingPolicy::kAdvanced);
}

TEST(AccountantTest, AdvancedPolicyTotalIsBestOfBasicAndAdvanced) {
  AdvancedAccountant accountant;
  for (int i = 0; i < 200; ++i) ASSERT_OK(accountant.Record("r", 0.1, 0.0));
  EXPECT_DOUBLE_EQ(accountant.Total(1e-6).epsilon,
                   accountant.BestTotal(1e-6).epsilon);
  EXPECT_LT(accountant.Total(1e-6).epsilon,
            accountant.BasicTotal().epsilon);
}

TEST(AccountantTest, ZcdpAccountantSumsRho) {
  ZcdpAccountant accountant;
  ASSERT_OK_AND_ASSIGN(PrivacyLoss loss, PrivacyLoss::Zcdp(0.01));
  ASSERT_OK(accountant.Record("g1", loss));
  ASSERT_OK(accountant.Record("g2", loss));
  ASSERT_OK_AND_ASSIGN(double rho, accountant.TotalRho());
  EXPECT_DOUBLE_EQ(rho, 0.02);
  PrivacyParams total = accountant.Total(1e-6);
  EXPECT_NEAR(total.epsilon, ZcdpEpsilon(0.02, 1e-6), 1e-12);
  EXPECT_DOUBLE_EQ(total.delta, 1e-6);
}

TEST(AccountantTest, ZcdpAccountantComposesPureReleasesAtHalfEpsSquared) {
  // eps-DP is exactly (eps^2/2)-zCDP, so pure entries compose too.
  ZcdpAccountant accountant;
  ASSERT_OK(accountant.Record("laplace", 0.2, 0.0));
  ASSERT_OK_AND_ASSIGN(double rho, accountant.TotalRho());
  EXPECT_DOUBLE_EQ(rho, 0.5 * 0.2 * 0.2);
}

TEST(AccountantTest, ZcdpAccountantRefusesApproximateEntries) {
  ZcdpAccountant accountant;
  Status status = accountant.Record("approx", 0.5, 1e-6);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.num_releases(), 0);
  // A Basic ledger takes the same entry without complaint.
  BasicAccountant basic;
  EXPECT_OK(basic.Record("approx", 0.5, 1e-6));
}

TEST(AccountantTest, ZcdpGaussianLedgerTighterThanBasicForTwoPlusReleases) {
  // Acceptance: a ledger of N identical Gaussian releases certifies a
  // strictly smaller epsilon under zCDP accounting than basic composition
  // for every N >= 2.
  PrivacyParams per_release{0.5, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivacyLoss loss,
                       PrivacyLoss::GaussianFromParams(per_release));
  ZcdpAccountant accountant;
  for (int n = 1; n <= 32; ++n) {
    ASSERT_OK(accountant.Record("gaussian-refresh", loss));
    PrivacyParams zcdp = accountant.Total(per_release.delta);
    PrivacyParams basic = accountant.BasicTotal();
    if (n >= 2) {
      EXPECT_LT(zcdp.epsilon, basic.epsilon) << "N=" << n;
    }
  }
}

TEST(AccountantTest, ZcdpNeverLooserThanBasicForHomogeneousGaussianLedgers) {
  // Property sweep: for every (eps, delta) calibration and every ledger
  // size N >= 2, the zCDP total at target delta never exceeds the basic
  // (eps, delta)-sum.
  for (double eps : {0.1, 0.3, 0.5, 0.9}) {
    for (double delta : {1e-8, 1e-6, 1e-4}) {
      ASSERT_OK_AND_ASSIGN(
          PrivacyLoss loss,
          PrivacyLoss::GaussianFromParams(PrivacyParams{eps, delta, 1.0}));
      ZcdpAccountant accountant;
      ASSERT_OK(accountant.Record("g", loss));
      for (int n = 2; n <= 64; n *= 2) {
        while (accountant.num_releases() < n) {
          ASSERT_OK(accountant.Record("g", loss));
        }
        PrivacyParams zcdp = accountant.Total(delta);
        PrivacyParams basic = accountant.BasicTotal();
        EXPECT_LE(zcdp.epsilon, basic.epsilon)
            << "eps=" << eps << " delta=" << delta << " N=" << n;
        EXPECT_LE(zcdp.delta, basic.delta + 1e-18);
      }
    }
  }
}

TEST(AccountantTest, BasicPolicyStillComposesZcdpCertificates) {
  // A zCDP loss carries an (eps, delta) certificate, so the basic ledger
  // accepts it and sums the certificate.
  BasicAccountant accountant;
  ASSERT_OK_AND_ASSIGN(
      PrivacyLoss loss,
      PrivacyLoss::GaussianFromParams(PrivacyParams{0.5, 1e-6, 1.0}));
  ASSERT_OK(accountant.Record("gaussian", loss));
  EXPECT_DOUBLE_EQ(accountant.BasicTotal().epsilon, 0.5);
  EXPECT_DOUBLE_EQ(accountant.BasicTotal().delta, 1e-6);
}

}  // namespace
}  // namespace dpsp
