// Empirical differential-privacy property tests.
//
// Each test fixes a pair of *neighboring* weight functions (l1 distance
// exactly 1, the worst case), projects the mechanism's released object to a
// scalar, and checks the empirical privacy loss stays within the declared
// epsilon plus sampling slack. These cannot prove privacy but catch
// sensitivity and calibration mistakes (e.g. forgetting the log V factor in
// the tree mechanism) with high power — see the deliberately broken
// mechanism in dp_verifier_test.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/baselines.h"
#include "core/hld_oracle.h"
#include "core/private_mst.h"
#include "core/private_shortest_path.h"
#include "core/tree_distance.h"
#include "dp/dp_verifier.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

constexpr double kSamplingSlack = 0.35;

TEST(PrivacyPropertyTest, SinglePairDistanceQuery) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  EdgeWeights w{1.0, 1.0, 1.0};
  EdgeWeights w_prime{1.0, 2.0, 1.0};  // l1 distance 1
  double eps = 1.0;
  PrivacyParams params{eps, 0.0, 1.0};
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 30000;
  options.range_lo = -6.0;
  options.range_hi = 12.0;
  ScalarMechanism on_w = [&](Rng* r) {
    return PrivateSinglePairDistance(g, w, 0, 3, params, r).value();
  };
  ScalarMechanism on_wp = [&](Rng* r) {
    return PrivateSinglePairDistance(g, w_prime, 0, 3, params, r).value();
  };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + kSamplingSlack);
}

TEST(PrivacyPropertyTest, SyntheticGraphReleaseSingleEdgeProjection) {
  // Project the released graph to one edge's distance (post-processing).
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(4));
  EdgeWeights w{1.0, 1.0, 1.0, 1.0};
  EdgeWeights w_prime{2.0, 1.0, 1.0, 1.0};
  double eps = 1.0;
  PrivacyParams params{eps, 0.0, 1.0};
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 30000;
  options.range_lo = -2.0;
  options.range_hi = 8.0;
  auto project = [&](const EdgeWeights& weights, Rng* r) {
    auto oracle = MakeSyntheticGraphOracle(g, weights, params, r).value();
    return oracle->Distance(0, 1).value();
  };
  ScalarMechanism on_w = [&](Rng* r) { return project(w, r); };
  ScalarMechanism on_wp = [&](Rng* r) { return project(w_prime, r); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + kSamplingSlack);
}

TEST(PrivacyPropertyTest, TreeMechanismDeepVertexProjection) {
  // Path tree of 8 vertices; neighbor pair shifts one mid-path edge. The
  // deepest estimate accumulates the most released values, making it the
  // most privacy-exposed projection.
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  EdgeWeights w(7, 1.0);
  EdgeWeights w_prime = w;
  w_prime[3] += 1.0;
  double eps = 1.0;
  PrivacyParams params{eps, 0.0, 1.0};
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 30000;
  options.range_lo = -30.0;
  options.range_hi = 45.0;
  auto project = [&](const EdgeWeights& weights, Rng* r) {
    return ReleaseTreeSingleSourceDistances(g, weights, 0, params, r)
        .value()
        .estimates[7];
  };
  ScalarMechanism on_w = [&](Rng* r) { return project(w, r); };
  ScalarMechanism on_wp = [&](Rng* r) { return project(w_prime, r); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + kSamplingSlack);
}

TEST(PrivacyPropertyTest, Algorithm3ReleasedWeightProjection) {
  ASSERT_OK_AND_ASSIGN(BitGadgetGraph gadget, MakeShortestPathGadget(2));
  std::vector<int> x{0, 1};
  EdgeWeights w = gadget.EncodeBits(x);
  EdgeWeights w_prime = w;
  w_prime[0] += 1.0;  // neighboring
  double eps = 1.0;
  PrivateShortestPathOptions options_sp;
  options_sp.params = PrivacyParams{eps, 0.0, 1.0};
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 30000;
  options.range_lo = -5.0;
  options.range_hi = 15.0;
  auto project = [&](const EdgeWeights& weights, Rng* r) {
    auto release =
        PrivateShortestPaths::Release(gadget.graph, weights, options_sp, r)
            .value();
    return release.released_weights()[0];
  };
  ScalarMechanism on_w = [&](Rng* r) { return project(w, r); };
  ScalarMechanism on_wp = [&](Rng* r) { return project(w_prime, r); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + kSamplingSlack);
}

TEST(PrivacyPropertyTest, PrivateMstTreeWeightProjection) {
  // Project the released tree to its released (noisy) total weight.
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(4));
  EdgeWeights w{1.0, 1.0, 1.0, 1.0};
  EdgeWeights w_prime{2.0, 1.0, 1.0, 1.0};
  double eps = 1.0;
  PrivacyParams params{eps, 0.0, 1.0};
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 30000;
  options.range_lo = -8.0;
  options.range_hi = 14.0;
  auto project = [&](const EdgeWeights& weights, Rng* r) {
    PrivateMstResult result = PrivateMst(g, weights, params, r).value();
    return TotalWeight(result.noisy_weights, result.tree_edges);
  };
  ScalarMechanism on_w = [&](Rng* r) { return project(w, r); };
  ScalarMechanism on_wp = [&](Rng* r) { return project(w_prime, r); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + kSamplingSlack);
}

TEST(PrivacyPropertyTest, HldOracleDeepQueryProjection) {
  // Path of 8 rooted at 0 is a single heavy chain; project the released
  // object to the deepest distance query.
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  EdgeWeights w(7, 1.0);
  EdgeWeights w_prime = w;
  w_prime[3] += 1.0;
  double eps = 1.0;
  PrivacyParams params{eps, 0.0, 1.0};
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 30000;
  options.range_lo = -30.0;
  options.range_hi = 45.0;
  auto project = [&](const EdgeWeights& weights, Rng* r) {
    auto oracle = HldTreeOracle::Build(g, weights, params, r).value();
    return oracle->Distance(0, 7).value();
  };
  ScalarMechanism on_w = [&](Rng* r) { return project(w, r); };
  ScalarMechanism on_wp = [&](Rng* r) { return project(w_prime, r); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + kSamplingSlack);
}

TEST(PrivacyPropertyTest, ScaledNeighborBoundStillPrivate) {
  // With rho = 2 the same mechanism must defend a 2-unit change.
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  EdgeWeights w{1.0, 1.0};
  EdgeWeights w_prime{3.0, 1.0};  // l1 distance 2 = rho
  double eps = 1.0;
  PrivacyParams params{eps, 0.0, 2.0};
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 30000;
  options.range_lo = -8.0;
  options.range_hi = 14.0;
  ScalarMechanism on_w = [&](Rng* r) {
    return PrivateSinglePairDistance(g, w, 0, 2, params, r).value();
  };
  ScalarMechanism on_wp = [&](Rng* r) {
    return PrivateSinglePairDistance(g, w_prime, 0, 2, params, r).value();
  };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + kSamplingSlack);
}

}  // namespace
}  // namespace dpsp
