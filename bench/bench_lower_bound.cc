// Experiment E8 (Theorem 5.1 / Lemmas 5.2-5.4): the reconstruction attack
// against Algorithm 3 on the Figure-2 gadget. Sweeps epsilon and reports
// the attacker's mean Hamming distance and the released path's error,
// against the theoretical floor alpha = n(1-(1+e^eps)d)/(1+e^{2eps}) and
// the randomized-response optimum n/(1+e^eps) (Lemma 5.3).

#include "bench_util.h"
#include "common/table.h"
#include "core/reconstruction.h"

namespace dpsp {
namespace {

void Run() {
  Table table("E8: Theorem 5.1 reconstruction lower bound (Fig. 2 gadget)",
              {"n", "eps", "trials", "mean d_H(x,y)", "mean path error",
               "alpha (Thm 5.1)", "RR optimum n/(1+e^eps)"});
  Rng rng(kBenchSeed);
  for (int n : {50, 200}) {
    for (double eps : {0.1, 0.5, 1.0, 2.0, 4.0}) {
      PrivacyParams params{eps, 0.0, 1.0};
      AttackReport report = OrDie(RunReconstructionExperiment(
          AttackKind::kShortestPath, n, params, 30, &rng));
      table.Row()
          .Add(n)
          .Add(eps, 3)
          .Add(report.trials)
          .Add(report.mean_hamming, 4)
          .Add(report.mean_object_error, 4)
          .Add(report.alpha, 4)
          .Add(report.randomized_response_expectation, 4);
    }
  }
  table.Print();
  std::puts(
      "\nShape check: mean path error >= alpha at every eps (the released "
      "path must\nbe Omega(V) worse than optimal when eps is small), and "
      "the attacker's Hamming\ndistance tracks the randomized-response "
      "optimum — Algorithm 3 is near the\nreconstruction frontier.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
