// Experiment E2 (Theorem 4.2): all-pairs distances on trees via the LCA
// combination of the single-source release. Reports max/mean/p95 error over
// all pairs against the O(log^2.5 V log(1/gamma))/eps bound.

#include <string>

#include "bench_util.h"
#include "common/table.h"
#include "core/hld_oracle.h"
#include "core/tree_distance.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

Result<Graph> MakeTree(const std::string& family, int n, Rng* rng) {
  if (family == "path") return MakePathGraph(n);
  if (family == "balanced") return MakeBalancedTree(n, 2);
  if (family == "random") return MakeRandomTree(n, rng);
  return MakeCaterpillarTree(n / 4, 3);
}

void Run() {
  const double eps = 1.0;
  const double gamma = 0.05;
  PrivacyParams params{eps, 0.0, 1.0};

  Table table("E2: Theorem 4.2 all-pairs tree distances (eps=1)",
              {"family", "V", "pairs", "mean|err|", "p95|err|", "max|err|",
               "bound"});
  Rng rng(kBenchSeed);
  for (const char* family : {"path", "balanced", "random", "caterpillar"}) {
    for (int n : {64, 256, 1024}) {
      Graph g = OrDie(MakeTree(family, n, &rng));
      int v = g.num_vertices();
      EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
      DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));
      auto oracle = OrDie(TreeAllPairsOracle::Build(g, w, params, &rng));
      OracleErrorReport report =
          OrDie(EvaluateOracleAllPairs(g, exact, *oracle));
      double pairs = static_cast<double>(v) * (v - 1) / 2.0;
      double bound = TreeAllPairsErrorBound(v, params, gamma / pairs);
      table.Row()
          .Add(family)
          .Add(v)
          .Add(report.num_pairs)
          .Add(report.mean_abs_error, 4)
          .Add(report.p95_abs_error, 4)
          .Add(report.max_abs_error, 4)
          .Add(bound, 4);
    }
  }
  table.Print();

  // E2b ablation: the Algorithm-1 recursion vs the heavy-light
  // composition of the Appendix-A structure (core/hld_oracle.h). Both are
  // polylog in the worst case (where the recursion is a log^0.5 factor
  // tighter), but the HLD release's sensitivity adapts to the longest
  // heavy chain, so on shallow trees (random trees have ~sqrt(V) depth)
  // it uses a smaller noise scale and wins empirically.
  Table ablation("E2b: tree mechanism ablation (random trees, eps=1)",
                 {"V", "mechanism", "mean|err|", "max|err|"});
  for (int n : {64, 256, 1024}) {
    Graph g = OrDie(MakeRandomTree(n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
    DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));
    auto recursive = OrDie(TreeAllPairsOracle::Build(g, w, params, &rng));
    auto hld = OrDie(HldTreeOracle::Build(g, w, params, &rng));
    for (const DistanceOracle* oracle :
         {static_cast<const DistanceOracle*>(recursive.get()),
          static_cast<const DistanceOracle*>(hld.get())}) {
      OracleErrorReport report =
          OrDie(EvaluateOracleAllPairs(g, exact, *oracle));
      ablation.Row()
          .Add(n)
          .Add(oracle->Name())
          .Add(report.mean_abs_error, 4)
          .Add(report.max_abs_error, 4);
    }
  }
  ablation.Print();
  std::puts(
      "\nShape check: max|err| is polylog in V and below the Theorem 4.2 "
      "bound;\nthe per-query noise never scales with V as the baselines "
      "do (see bench_baselines).\nE2b: both tree mechanisms are polylog; "
      "the HLD oracle's chain-adaptive noise\nscale wins on shallow random "
      "trees, while the Figure-1 recursion holds the\nbetter worst-case "
      "bound (deep path-like trees).");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
