// Experiment E2 (Theorem 4.2): all-pairs distances on trees via the LCA
// combination of the single-source release. Reports max/mean/p95 error over
// all pairs against the O(log^2.5 V log(1/gamma))/eps bound, sweeps the
// tree mechanisms through the registry, and measures the batched query
// path against per-pair Distance loops.

#include <string>

#include "bench_util.h"
#include "core/hld_oracle.h"
#include "core/tree_distance.h"
#include "graph/generators.h"
#include "serve/batch_executor.h"

namespace dpsp {
namespace {

Result<Graph> MakeTree(const std::string& family, int n, Rng* rng) {
  if (family == "path") return MakePathGraph(n);
  if (family == "balanced") return MakeBalancedTree(n, 2);
  if (family == "random") return MakeRandomTree(n, rng);
  return MakeCaterpillarTree(n / 4, 3);
}

void Run() {
  const double eps = 1.0;
  const double gamma = 0.05;
  PrivacyParams params{eps, 0.0, 1.0};

  Table table("E2: Theorem 4.2 all-pairs tree distances (eps=1)",
              {"family", "V", "pairs", "mean|err|", "p95|err|", "max|err|",
               "bound"});
  Rng rng(kBenchSeed);
  for (const char* family : {"path", "balanced", "random", "caterpillar"}) {
    for (int n : {64, 256, 1024}) {
      Graph g = OrDie(MakeTree(family, n, &rng));
      int v = g.num_vertices();
      EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
      DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));
      ReleaseContext ctx =
          OrDie(ReleaseContext::Create(params, rng.NextSeed()));
      auto oracle = OrDie(OracleRegistry::Global().Create(
          TreeAllPairsOracle::kName, g, w, ctx));
      OracleErrorReport report =
          OrDie(EvaluateOracleAllPairs(g, exact, *oracle));
      double pairs = static_cast<double>(v) * (v - 1) / 2.0;
      double bound = TreeAllPairsErrorBound(v, params, gamma / pairs);
      table.Row()
          .Add(family)
          .Add(v)
          .Add(report.num_pairs)
          .Add(report.mean_abs_error, 4)
          .Add(report.p95_abs_error, 4)
          .Add(report.max_abs_error, 4)
          .Add(bound, 4);
    }
  }
  table.Print();

  // E2b ablation: the registry's tree mechanisms side by side on random
  // trees. Both are polylog in the worst case (where the Figure-1
  // recursion is a log^0.5 factor tighter), but the HLD release's
  // sensitivity adapts to the longest heavy chain, so on shallow trees
  // (random trees have ~sqrt(V) depth) it uses a smaller noise scale and
  // wins empirically.
  for (int n : {64, 256, 1024}) {
    Graph g = OrDie(MakeRandomTree(n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
    DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));
    std::vector<VertexPair> pairs;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v2 = u + 1; v2 < n; ++v2) pairs.emplace_back(u, v2);
    }
    SweepOptions options;
    options.params = params;
    options.input = OracleInput::kTree;
    options.seed = rng.NextSeed();
    Table ablation = MakeSweepTable(
        StrFormat("E2b: tree mechanism sweep (random tree, V=%d, eps=1)", n));
    AppendSweepRows(ablation, g, w, exact, pairs, options);
    ablation.Print();
  }

  // E2c: batched queries vs per-pair loops. `lifting_ms` is the
  // pre-refactor query path — a per-pair loop that re-derives every LCA by
  // binary lifting (O(log V) per query); `loop_ms` calls the refactored
  // Distance() (O(1) Euler-tour LCA) one pair at a time; `batch_ms` is one
  // DistanceBatch call, which validates once, skips the per-query
  // Result/virtual-dispatch overhead, and splits across worker threads on
  // multicore machines. All three produce the same results vector; best of
  // three interleaved runs each.
  Table timing("E2c: per-pair loops vs DistanceBatch (random tree, eps=1)",
               {"V", "mechanism", "queries", "lifting_ms", "loop_ms",
                "batch_ms", "batch_vs_loop", "batch_vs_lifting"});
  for (int n : {1024, 4096}) {
    Graph g = OrDie(MakeRandomTree(n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
    std::vector<VertexPair> pairs = SamplePairs(n, 400000, &rng);
    RootedTree rooted = OrDie(RootedTree::FromGraph(g, 0));
    LcaIndex lifting(rooted);

    for (const char* name :
         {TreeAllPairsOracle::kName, HldTreeOracle::kName}) {
      ReleaseContext ctx =
          OrDie(ReleaseContext::Create(params, rng.NextSeed()));
      auto oracle =
          OrDie(OracleRegistry::Global().Create(name, g, w, ctx));
      // The seed-style lifting loop is reproducible from the released
      // estimates for the recursion oracle only (the HLD ascent is
      // internal); its row reuses the recursion release.
      const TreeAllPairsOracle* recursion =
          dynamic_cast<const TreeAllPairsOracle*>(oracle.get());

      double lifting_ms = 1e300;
      double loop_ms = 1e300;
      double batch_ms = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        double rewalk_front = 0.0;
        if (recursion != nullptr) {
          const auto& est = recursion->release().estimates;
          WallTimer lifting_timer;
          std::vector<double> rewalk(pairs.size());
          for (size_t i = 0; i < pairs.size(); ++i) {
            VertexId z = lifting.Lca(pairs[i].first, pairs[i].second);
            rewalk[i] = est[static_cast<size_t>(pairs[i].first)] +
                        est[static_cast<size_t>(pairs[i].second)] -
                        2.0 * est[static_cast<size_t>(z)];
          }
          lifting_ms = std::min(lifting_ms, lifting_timer.Ms());
          rewalk_front = rewalk[0];
        }

        WallTimer loop_timer;
        std::vector<double> serial(pairs.size());
        for (size_t i = 0; i < pairs.size(); ++i) {
          serial[i] = OrDie(oracle->Distance(pairs[i].first,
                                             pairs[i].second));
        }
        loop_ms = std::min(loop_ms, loop_timer.Ms());

        WallTimer batch_timer;
        std::vector<double> batch = OrDie(oracle->DistanceBatch(pairs));
        batch_ms = std::min(batch_ms, batch_timer.Ms());
        // Keep the work honest: all strategies must agree (and the reads
        // stop the compiler eliding the timed stores).
        if (batch[0] != serial[0]) std::abort();
        if (recursion != nullptr && rewalk_front != serial[0]) std::abort();
      }

      timing.Row().Add(n).Add(name).Add(static_cast<int64_t>(pairs.size()));
      if (recursion != nullptr) {
        timing.Add(lifting_ms, 4);
      } else {
        timing.Add("-");
      }
      timing.Add(loop_ms, 4).Add(batch_ms, 4).Add(loop_ms / batch_ms, 3);
      if (recursion != nullptr) {
        timing.Add(lifting_ms / batch_ms, 3);
      } else {
        timing.Add("-");
      }
    }
  }
  timing.Print();

  // E2d: serving throughput at scale — the cache-flat layouts plus the
  // sharded executor on a tree two orders of magnitude larger than E2c.
  // Steady state: warmup run excluded, best of three (first-touch page
  // faults would otherwise be billed to whichever strategy ran first).
  Table big_timing(
      "E2d: batched serving at scale (random tree, V=131072, 400k queries, "
      "eps=1)",
      {"mechanism", "loop ns/q", "batch ns/q", "sharded ns/q",
       "batch Mops/s", "sharded Mops/s"});
  {
    const int big_n = 131072;
    Graph g = OrDie(MakeRandomTree(big_n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
    std::vector<VertexPair> pairs = SamplePairs(big_n, 400000, &rng);
    BatchExecutor executor;  // contiguous shards, one per worker

    for (const char* name :
         {TreeAllPairsOracle::kName, HldTreeOracle::kName}) {
      ReleaseContext ctx =
          OrDie(ReleaseContext::Create(params, rng.NextSeed()));
      auto oracle =
          OrDie(OracleRegistry::Global().Create(name, g, w, ctx));

      BatchTiming loop = TimeBatchRunner(pairs.size(), 1, 3, [&] {
        double front = 0.0;
        for (size_t i = 0; i < pairs.size(); ++i) {
          double d = OrDie(oracle->Distance(pairs[i].first,
                                            pairs[i].second));
          if (i == 0) front = d;
        }
        return front;
      });
      BatchTiming batch = TimeDistanceBatch(*oracle, pairs);
      BatchTiming sharded = TimeBatchRunner(pairs.size(), 1, 3, [&] {
        return OrDie(executor.Execute(*oracle, pairs)).front();
      });
      if (loop.front != batch.front || batch.front != sharded.front) {
        std::abort();  // all strategies must agree
      }
      big_timing.Row()
          .Add(name)
          .Add(loop.ns_per_query, 2)
          .Add(batch.ns_per_query, 2)
          .Add(sharded.ns_per_query, 2)
          .Add(batch.ops_per_sec / 1e6, 2)
          .Add(sharded.ops_per_sec / 1e6, 2);
    }
  }
  big_timing.Print();

  std::puts(
      "\nShape check: max|err| is polylog in V and below the Theorem 4.2 "
      "bound;\nthe per-query noise never scales with V as the baselines "
      "do (see bench_baselines).\nE2b: both tree mechanisms are polylog; "
      "the HLD oracle's chain-adaptive noise\nscale wins on shallow random "
      "trees, while the Figure-1 recursion holds the\nbetter worst-case "
      "bound (deep path-like trees).\nE2c: DistanceBatch beats the "
      "per-pair Distance loop on both tree oracles\n(and the pre-refactor "
      "binary-lifting loop by a wide margin — the shared\nEuler-tour LCA "
      "precompute is in effect); chunks parallelize further on\nmulticore "
      "machines.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
