// Experiment E7 (Theorem 5.5 / Corollary 5.6): private shortest paths via
// Algorithm 3. Stratifies source-target pairs by the hop count k of the
// true shortest path and reports the released path's excess weight against
// the (2k/eps) log(E/gamma) bound, on synthetic road networks and random
// graphs, across an epsilon sweep.

#include <algorithm>
#include <cmath>
#include <map>

#include "bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/private_shortest_path.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void RunOnGraph(const char* name, const Graph& g, const EdgeWeights& w,
                Table* table, Rng* rng) {
  for (double eps : {0.5, 1.0, 2.0}) {
    PrivateShortestPathOptions options;
    options.params = PrivacyParams{eps, 0.0, 1.0};
    options.gamma = 0.05;

    // Bucket pairs by true hop count.
    std::map<int, OnlineStats> excess_by_bucket;  // bucket = hops rounded
    std::map<int, double> bound_by_bucket;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      PrivateShortestPaths release =
          OrDie(PrivateShortestPaths::Release(g, w, options, rng));
      for (int s = 0; s < g.num_vertices(); s += 17) {
        ShortestPathTree exact = OrDie(Dijkstra(g, w, s));
        ShortestPathTree noisy = OrDie(release.PathTree(s));
        for (VertexId v = 0; v < g.num_vertices(); v += 13) {
          if (v == s || !exact.Reachable(v)) continue;
          auto exact_path = OrDie(ExtractPathEdges(g, exact, v));
          auto released_path = OrDie(ExtractPathEdges(g, noisy, v));
          int k = static_cast<int>(exact_path.size());
          int bucket = k <= 4 ? 4 : (k <= 8 ? 8 : (k <= 16 ? 16 : 32));
          double excess = TotalWeight(w, released_path) -
                          exact.distance[static_cast<size_t>(v)];
          excess_by_bucket[bucket].Add(excess);
          bound_by_bucket[bucket] =
              std::max(bound_by_bucket[bucket], release.ErrorBoundForHops(k));
        }
      }
    }
    for (auto& [bucket, stats] : excess_by_bucket) {
      table->Row()
          .Add(name)
          .Add(eps, 3)
          .Add(StrFormat("<=%d", bucket))
          .Add(static_cast<int64_t>(stats.count()))
          .Add(stats.mean(), 4)
          .Add(stats.max(), 4)
          .Add(bound_by_bucket[bucket], 4);
    }
  }
}

void Run() {
  Table table("E7: Theorem 5.5 private shortest paths (Algorithm 3)",
              {"graph", "eps", "hops k", "paths", "mean excess",
               "max excess", "bound 2k log(E/g)/eps"});
  Rng rng(kBenchSeed);

  RoadNetwork network = OrDie(MakeSyntheticRoadNetwork(14, 14, 0.25, &rng));
  EdgeWeights traffic = MakeCongestionWeights(network, 5, 3.0, &rng);
  RunOnGraph("road 14x14", network.graph, traffic, &table, &rng);

  Graph er = OrDie(MakeConnectedErdosRenyi(200, 0.03, &rng));
  EdgeWeights er_w = MakeUniformWeights(er, 0.0, 4.0, &rng);
  RunOnGraph("ER(200)", er, er_w, &table, &rng);

  table.Print();
  std::puts(
      "\nShape check: excess grows with the hop bucket and shrinks as "
      "1/eps; max excess\nstays below the per-bucket bound (Cor 5.6 is the "
      "k=V row of this table).");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
