// Experiment E9 (Theorems B.1 / B.3): private almost-minimum spanning
// trees. Two tables: (a) the reconstruction attack on the Figure-3-left
// gadget showing the Omega(V) floor, (b) the Laplace+MST mechanism's error
// on random graphs against the O(V log E / eps) bound.

#include "bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/private_mst.h"
#include "core/reconstruction.h"
#include "graph/generators.h"
#include "graph/spanning_tree.h"

namespace dpsp {
namespace {

void Run() {
  Rng rng(kBenchSeed);

  Table lower("E9a: Theorem B.1 MST lower bound (Fig. 3 left gadget)",
              {"n", "eps", "mean tree error", "alpha (Thm B.1)",
               "RR optimum"});
  for (int n : {50, 200}) {
    for (double eps : {0.1, 0.5, 1.0, 2.0, 4.0}) {
      PrivacyParams params{eps, 0.0, 1.0};
      AttackReport report = OrDie(RunReconstructionExperiment(
          AttackKind::kMst, n, params, 30, &rng));
      lower.Row()
          .Add(n)
          .Add(eps, 3)
          .Add(report.mean_object_error, 4)
          .Add(MstLowerBound(n + 1, eps, 0.0), 4)
          .Add(report.randomized_response_expectation, 4);
    }
  }
  lower.Print();

  Table upper("E9b: Theorem B.3 Laplace MST upper bound (eps sweep)",
              {"graph", "V", "eps", "trials", "mean error", "max error",
               "bound(.05)"});
  for (int n : {50, 150}) {
    Graph g = OrDie(MakeConnectedErdosRenyi(n, 8.0 / n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
    double opt = TotalWeight(w, OrDie(KruskalMst(g, w)));
    for (double eps : {0.5, 1.0, 2.0}) {
      PrivacyParams params{eps, 0.0, 1.0};
      OnlineStats error;
      const int trials = 15;
      for (int t = 0; t < trials; ++t) {
        PrivateMstResult result = OrDie(PrivateMst(g, w, params, &rng));
        error.Add(TotalWeight(w, result.tree_edges) - opt);
      }
      upper.Row()
          .Add(StrFormat("ER(%d)", n))
          .Add(n)
          .Add(eps, 3)
          .Add(trials)
          .Add(error.mean(), 4)
          .Add(error.max(), 4)
          .Add(PrivateMstErrorBound(n, g.num_edges(), params, 0.05), 4);
    }
  }
  upper.Print();
  std::puts(
      "\nShape check: gadget error sits on/above alpha (lower bound) while "
      "the mechanism's\nerror on benign graphs stays far below the "
      "pessimistic upper bound; both scale 1/eps.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
