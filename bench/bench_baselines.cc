// Experiment E6 (§4 introduction): the three generic all-pairs baselines —
// pure per-pair composition, advanced-composition per-pair, and the
// synthetic-graph release — against the paper's specialized mechanisms on
// a shared workload. Also prints the error formula of the DRV10 boosting
// baseline (not implemented: exponential time; see DESIGN.md §1.3).
//
// An honest note the table makes visible: the synthetic-graph baseline's
// *measured* error on sparse graphs benefits from independent-noise
// cancellation (~sqrt(hops)) and is competitive at these sizes, even
// though its guarantee ((V/eps) log(E/gamma)) is much weaker than the tree
// algorithm's polylog bound. The per-pair baselines degrade exactly as the
// paper says.

#include <cmath>

#include "bench_util.h"
#include "common/table.h"
#include "core/baselines.h"
#include "core/tree_distance.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void Run() {
  PrivacyParams pure{1.0, 0.0, 1.0};
  PrivacyParams approx{1.0, 1e-6, 1.0};

  Table table("E6: Section-4 baselines vs tree algorithm (eps=1, tree input)",
              {"V", "mechanism", "mean|err|", "max|err|",
               "guarantee (per query)"});
  Rng rng(kBenchSeed);
  for (int n : {64, 256, 512}) {
    Graph g = OrDie(MakeRandomTree(n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
    DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));
    int pairs = n * (n - 1) / 2;

    auto evaluate = [&](const DistanceOracle& oracle,
                        const std::string& guarantee) {
      OracleErrorReport report =
          OrDie(EvaluateOracleAllPairs(g, exact, oracle));
      table.Row()
          .Add(n)
          .Add(oracle.Name())
          .Add(report.mean_abs_error, 4)
          .Add(report.max_abs_error, 4)
          .Add(guarantee);
    };

    // All four oracles come out of the registry; only the context's params
    // differ between the pure and approx variants.
    auto create = [&](const char* name, const PrivacyParams& params) {
      ReleaseContext ctx =
          OrDie(ReleaseContext::Create(params, rng.NextSeed()));
      return OrDie(OracleRegistry::Global().Create(name, g, w, ctx));
    };
    auto tree = create(TreeAllPairsOracle::kName, pure);
    evaluate(*tree, StrFormat("O(log^2.5 V)/eps = %.4g",
                              TreeAllPairsErrorBound(n, pure, 0.05)));
    auto synthetic = create(kSyntheticGraphOracleName, pure);
    evaluate(*synthetic,
             StrFormat("(V/eps)log(E/g) = %.4g",
                       n * std::log(g.num_edges() / 0.05)));
    auto pp_approx = create(kPerPairLaplaceOracleName, approx);
    evaluate(*pp_approx,
             StrFormat("Lap scale %.4g",
                       OrDie(PerPairLaplaceNoiseScale(pairs, approx))));
    auto pp_pure = create(kPerPairLaplaceOracleName, pure);
    evaluate(*pp_pure,
             StrFormat("Lap scale %.4g",
                       OrDie(PerPairLaplaceNoiseScale(pairs, pure))));
  }
  table.Print();

  // DRV10 formula for context (integer weights, ||w||_1 known).
  Table drv("E6b: DRV10 boosting baseline (formula only; exponential time)",
            {"V", "||w||_1", "error formula O~(sqrt(w1) log V log^1.5(1/d)/eps)"});
  for (int n : {64, 256, 512}) {
    double w1 = 2.5 * (n - 1);  // expected sum of Uniform[0,5] weights
    drv.Row().Add(n).Add(w1, 4).Add(Drv10ErrorFormula(w1, n, 1.0, 1e-6), 4);
  }
  drv.Print();
  std::puts(
      "\nShape check: per-pair baselines blow up with V (scale ~V^2 pure, "
      "~V approx);\nthe tree mechanism's error is flat-ish in V. The "
      "synthetic-graph baseline's\nmeasured error sits between (see header "
      "comment).");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
