// Closed-loop load generator for the network query server: N client
// threads, each with its own connection, each firing batch after batch
// with no think time — the classic closed-loop throughput harness. For
// every mechanism the harness releases one handle on a loopback server,
// hammers it, and reports end-to-end ops/sec (pairs answered per second
// through socket + framing + sharded execution) next to the in-process
// BatchExecutor ops/sec on the identical release, so the wire overhead is
// one column, not a guess.
//
// A second phase (S2) runs the mixed continual-release workload: the same
// closed-loop query clients hammer an UPDATABLE release while one updater
// connection applies weight-update epochs through the protocol-v3
// UpdateWeights frame — serving throughput under live incremental
// re-releases, plus the epoch rate the single-ledger update path sustains.
//
// A third phase (S3) measures the replicated read tier: a coordinator
// ships one release to four replicas, then the client fleet is spread
// across 1, 2, and 4 replica endpoints. Each replica enforces a fixed
// per-node admission ceiling (max_query_pairs_per_sec) well under the
// mechanism's compute rate, so aggregate throughput is capacity x
// endpoint count and the scale-out curve is deterministic on any
// runner, single-core CI included — the "replica" series in the JSON
// is that curve.
//
// Usage: bench_server_loadgen [out.json]
//   out.json  machine-readable per-mechanism numbers (ops/sec over the
//             wire and direct) — BENCH_server.json, the CI perf artifact.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/coordinator.h"
#include "cluster/replica.h"
#include "common/statistics.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/batch_executor.h"

namespace dpsp {
namespace {

constexpr int kNumVertices = 32768;
constexpr int kClients = 8;
constexpr int kBatchesPerClient = 24;
constexpr int kPairsPerBatch = 2048;
constexpr int kWarmupBatchesPerClient = 2;

struct LoadgenRow {
  std::string mechanism;
  double build_ms = 0.0;
  double net_ops_per_sec = 0.0;
  double net_round_trip_ms = 0.0;  // mean per batch across the run
  double net_p50_ms = 0.0;         // per-batch round-trip percentiles
  double net_p99_ms = 0.0;
  double direct_ops_per_sec = 0.0;
};

/// One client thread's closed loop: connect, warm up, then fire `batches`
/// query batches back to back. Non-warmup per-batch round-trip times (ms)
/// are appended to `latencies_ms` when non-null — the tail-latency view
/// closed-loop aggregate throughput hides. Returns false on any failure.
bool RunClient(uint16_t port, uint32_t handle_id,
               const std::vector<VertexPair>& pairs, int batches,
               std::string* error,
               std::vector<double>* latencies_ms = nullptr) {
  Result<net::Client> client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    *error = client.status().ToString();
    return false;
  }
  if (latencies_ms != nullptr) {
    latencies_ms->reserve(static_cast<size_t>(batches));
  }
  for (int b = 0; b < kWarmupBatchesPerClient + batches; ++b) {
    WallTimer timer;
    Result<std::vector<double>> distances =
        client->Query(handle_id, pairs);
    if (!distances.ok()) {
      *error = distances.status().ToString();
      return false;
    }
    if (latencies_ms != nullptr && b >= kWarmupBatchesPerClient) {
      latencies_ms->push_back(timer.Ms());
    }
  }
  return true;
}

/// Merges per-client latency samples and fills the row's percentiles.
void FillLatencyPercentiles(const std::vector<std::vector<double>>& samples,
                            double* p50_ms, double* p99_ms) {
  std::vector<double> all;
  for (const std::vector<double>& s : samples) {
    all.insert(all.end(), s.begin(), s.end());
  }
  if (all.empty()) return;
  *p50_ms = Quantile(all, 0.50);
  *p99_ms = Quantile(all, 0.99);
}

/// The S2 mixed query/update phase's numbers.
struct MixedRow {
  std::string mechanism;
  double query_ops_per_sec = 0.0;
  double query_p50_ms = 0.0;  // per-batch round trip under live updates
  double query_p99_ms = 0.0;
  uint64_t update_epochs = 0;
  double update_epochs_per_sec = 0.0;
  int deltas_per_epoch = 0;
  double charged_eps_per_epoch = 0.0;
};

/// One S3 series point: the fleet spread over `replicas` read nodes.
struct ReplicaRow {
  int replicas = 0;
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

void WriteJson(const char* path, const std::vector<LoadgenRow>& rows,
               const MixedRow& mixed,
               const std::vector<ReplicaRow>& replica_rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not write JSON to %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_server_loadgen\",\n");
  std::fprintf(f,
               "  \"graph\": \"path\", \"V\": %d, \"clients\": %d, "
               "\"batches_per_client\": %d, \"pairs_per_batch\": %d,\n",
               kNumVertices, kClients, kBatchesPerClient, kPairsPerBatch);
  std::fprintf(f, "  \"mechanisms\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LoadgenRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"build_ms\": %.2f, "
                 "\"ops_per_sec\": %.0f, \"round_trip_ms\": %.3f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"direct_ops_per_sec\": %.0f}%s\n",
                 r.mechanism.c_str(), r.build_ms, r.net_ops_per_sec,
                 r.net_round_trip_ms, r.net_p50_ms, r.net_p99_ms,
                 r.direct_ops_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"mixed\": {\"name\": \"%s\", \"ops_per_sec\": %.0f, "
               "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
               "\"update_epochs\": %llu, \"update_epochs_per_sec\": %.2f, "
               "\"deltas_per_epoch\": %d, \"charged_eps_per_epoch\": %g}\n",
               mixed.mechanism.c_str(), mixed.query_ops_per_sec,
               mixed.query_p50_ms, mixed.query_p99_ms,
               static_cast<unsigned long long>(mixed.update_epochs),
               mixed.update_epochs_per_sec, mixed.deltas_per_epoch,
               mixed.charged_eps_per_epoch);
  std::fprintf(f, "  ,\"replica\": [\n");
  for (size_t i = 0; i < replica_rows.size(); ++i) {
    const ReplicaRow& r = replica_rows[i];
    std::fprintf(f,
                 "    {\"replicas\": %d, \"ops_per_sec\": %.0f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 r.replicas, r.ops_per_sec, r.p50_ms, r.p99_ms,
                 i + 1 < replica_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path);
}

void Run(const char* json_path) {
  Rng rng(kBenchSeed);
  Graph g = OrDie(MakePathGraph(kNumVertices));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);

  // A generous total budget: the loadgen measures serving throughput, not
  // admission (tests cover that); every release here must be granted.
  ReleaseContext ctx = OrDie(ReleaseContext::Create(
      PrivacyParams{1.0, 0.0, 1.0}, kBenchNoiseSeed));
  ctx.SetTotalBudget(PrivacyParams{100.0, 0.0, 1.0});

  net::QueryServerOptions options;
  // Throughput harness, not an admission test: size the queue-depth limit
  // to the client count so nothing is shed mid-run on small machines.
  options.max_inflight_queries = kClients;
  net::QueryServer server(options, std::move(ctx));
  OrDie(server.AddWorkload("path", g, w));
  OrDie(server.Start());
  std::printf("loadgen server on 127.0.0.1:%u — %d clients x %d batches "
              "x %d pairs per mechanism\n",
              server.port(), kClients, kBatchesPerClient, kPairsPerBatch);

  std::vector<VertexPair> pairs =
      SamplePairs(kNumVertices, kPairsPerBatch, &rng);

  // The identical releases, reproduced locally for the direct baseline:
  // same params, same seed, same release order => same noise stream.
  ReleaseContext direct_ctx = OrDie(ReleaseContext::Create(
      PrivacyParams{1.0, 0.0, 1.0}, kBenchNoiseSeed));
  BatchExecutor executor;

  Table table("S1: closed-loop server throughput (loopback TCP, " +
                  std::to_string(kClients) + " clients)",
              {"mechanism", "build_ms", "net Mops/s", "rtt ms/batch",
               "p50 ms", "p99 ms", "direct Mops/s", "net/direct"});
  std::vector<LoadgenRow> rows;
  net::Client admin = OrDie(net::Client::Connect("127.0.0.1",
                                                 server.port()));
  for (const char* name :
       {"tree-recursive", "tree-hld", "path-hierarchy", "bounded-weight"}) {
    net::ReleaseInfo info =
        OrDie(admin.Release("path", name, std::string("loadgen-") + name));
    LoadgenRow& row = rows.emplace_back();
    row.mechanism = name;
    row.build_ms = info.wall_ms;

    std::vector<std::string> errors(kClients);
    std::vector<std::vector<double>> latencies(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    WallTimer timer;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        RunClient(server.port(), info.handle_id, pairs, kBatchesPerClient,
                  &errors[static_cast<size_t>(c)],
                  &latencies[static_cast<size_t>(c)]);
      });
    }
    for (std::thread& t : clients) t.join();
    double wall_s = timer.Ms() * 1e-3;
    for (const std::string& error : errors) {
      if (!error.empty()) {
        std::fprintf(stderr, "loadgen client failed: %s\n", error.c_str());
        std::exit(1);
      }
    }
    // Warmup batches ran inside the timed window (closed loop has no
    // global barrier), so count them in the totals.
    double total_batches =
        static_cast<double>(kClients) *
        (kBatchesPerClient + kWarmupBatchesPerClient);
    double total_pairs = total_batches * kPairsPerBatch;
    row.net_ops_per_sec = total_pairs / wall_s;
    row.net_round_trip_ms = wall_s * 1e3 * kClients / total_batches;
    FillLatencyPercentiles(latencies, &row.net_p50_ms, &row.net_p99_ms);

    // Direct baseline on the bit-identical local release.
    auto oracle = OrDie(OracleRegistry::Global().Create(name, g, w,
                                                        direct_ctx));
    BatchTiming direct = TimeBatchRunner(pairs.size(), 1, 3, [&] {
      return OrDie(executor.Execute(*oracle, pairs)).front();
    });
    row.direct_ops_per_sec = direct.ops_per_sec;

    table.Row()
        .Add(name)
        .Add(row.build_ms, 2)
        .Add(row.net_ops_per_sec / 1e6, 3)
        .Add(row.net_round_trip_ms, 3)
        .Add(row.net_p50_ms, 3)
        .Add(row.net_p99_ms, 3)
        .Add(row.direct_ops_per_sec / 1e6, 3)
        .Add(row.net_ops_per_sec / row.direct_ops_per_sec, 3);
  }
  table.Print();

  // S2: the mixed continual-release workload. The query fleet hammers an
  // updatable tree-hld release while one updater connection applies
  // weight-update epochs; the server interleaves them under the handle's
  // reader/writer guard and the single ledger. The updater stops cleanly
  // on kBudgetExhausted — on this single-chain path workload every epoch
  // charges the full per-release epsilon, so admission is part of the
  // scenario, not a failure.
  const int kDeltasPerEpoch = 64;
  MixedRow mixed;
  mixed.mechanism = "tree-hld";
  mixed.deltas_per_epoch = kDeltasPerEpoch;
  {
    net::ReleaseInfo info =
        OrDie(admin.Release("path", "tree-hld", "mixed-tree-hld"));
    std::atomic<bool> queries_done{false};
    std::atomic<uint64_t> epochs{0};
    std::string update_error;
    std::thread updater([&] {
      Result<net::Client> client =
          net::Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        update_error = client.status().ToString();
        return;
      }
      Rng delta_rng(kBenchNoiseSeed ^ 0x0dd5);
      std::vector<EdgeWeightDelta> deltas(kDeltasPerEpoch);
      while (!queries_done.load()) {
        for (EdgeWeightDelta& d : deltas) {
          d.edge = static_cast<EdgeId>(
              delta_rng.UniformInt(0, g.num_edges() - 1));
          d.new_weight = delta_rng.Uniform(0.1, 0.9);
        }
        Result<net::UpdateInfo> applied =
            client->UpdateWeights(info.handle_id, deltas);
        if (!applied.ok()) {
          if (client->last_error() &&
              client->last_error()->kind ==
                  net::ErrorKind::kBudgetExhausted) {
            break;  // ledger ceiling reached: the clean stop signal
          }
          update_error = applied.status().ToString();
          break;
        }
        mixed.charged_eps_per_epoch = applied->charged_epsilon;
        epochs.fetch_add(1);
      }
    });
    std::vector<std::string> errors(kClients);
    std::vector<std::vector<double>> latencies(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    WallTimer timer;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        RunClient(server.port(), info.handle_id, pairs, kBatchesPerClient,
                  &errors[static_cast<size_t>(c)],
                  &latencies[static_cast<size_t>(c)]);
      });
    }
    for (std::thread& t : clients) t.join();
    double wall_s = timer.Ms() * 1e-3;
    queries_done.store(true);
    FillLatencyPercentiles(latencies, &mixed.query_p50_ms,
                           &mixed.query_p99_ms);
    updater.join();
    for (const std::string& error : errors) {
      if (!error.empty()) {
        std::fprintf(stderr, "mixed loadgen client failed: %s\n",
                     error.c_str());
        std::exit(1);
      }
    }
    if (!update_error.empty()) {
      std::fprintf(stderr, "mixed loadgen updater failed: %s\n",
                   update_error.c_str());
      std::exit(1);
    }
    double total_pairs =
        static_cast<double>(kClients) *
        (kBatchesPerClient + kWarmupBatchesPerClient) * kPairsPerBatch;
    mixed.query_ops_per_sec = total_pairs / wall_s;
    mixed.update_epochs = epochs.load();
    mixed.update_epochs_per_sec =
        static_cast<double>(mixed.update_epochs) / wall_s;
    std::printf(
        "\nS2: mixed workload (tree-hld): %.3f query Mops/s "
        "(p50=%.3f ms, p99=%.3f ms per batch) under "
        "%llu update epochs (%.1f epochs/s, %d deltas each, eps=%g per "
        "epoch)\n",
        mixed.query_ops_per_sec / 1e6, mixed.query_p50_ms,
        mixed.query_p99_ms,
        static_cast<unsigned long long>(mixed.update_epochs),
        mixed.update_epochs_per_sec, kDeltasPerEpoch,
        mixed.charged_eps_per_epoch);
  }

  // S3: the replicated read tier. A coordinator attached to the serving
  // node ships a fresh release to four ledger-less replicas, then the
  // same client fleet is spread across 1, 2, and 4 replica endpoints
  // (client c hits replica c % N). Every replica gets the same per-node
  // admission ceiling, set well below tree-hld's compute rate: per-node
  // capacity is then the configured pacer, not the runner's core count,
  // and the aggregate scales with the endpoint count even on a
  // single-core CI box. The executor is also capped at two threads so a
  // replica never monopolizes a big machine.
  constexpr double kReplicaPairsPerSec = 400e3;
  std::vector<ReplicaRow> replica_rows;
  {
    cluster::Coordinator coordinator(cluster::CoordinatorOptions{},
                                     &server);
    OrDie(coordinator.Start());

    struct ReplicaNode {
      std::unique_ptr<net::QueryServer> server;
      std::unique_ptr<cluster::Replica> replica;
    };
    constexpr int kReplicaNodes = 4;
    std::vector<ReplicaNode> nodes;
    for (int i = 0; i < kReplicaNodes; ++i) {
      net::QueryServerOptions ropts;
      ropts.max_inflight_queries = kClients;
      ropts.max_query_pairs_per_sec = kReplicaPairsPerSec;
      ropts.executor.max_threads = 2;
      ReplicaNode& node = nodes.emplace_back();
      node.server = std::make_unique<net::QueryServer>(ropts);
      OrDie(node.server->AddWorkload("path", g, w));
      OrDie(node.server->Start());
      cluster::ReplicaOptions roptions;
      roptions.coordinator_port = coordinator.replication_port();
      roptions.name = "bench-r" + std::to_string(i);
      node.replica =
          std::make_unique<cluster::Replica>(roptions, node.server.get());
      OrDie(node.replica->Start());
    }

    // The coordinator only ships images it witnessed: release AFTER the
    // attach so the snapshot fans out to the subscribed fleet.
    net::ReleaseInfo info =
        OrDie(admin.Release("path", "tree-hld", "replica-tree-hld"));
    for (ReplicaNode& node : nodes) {
      OrDie(node.replica->WaitForLsn(server.last_epoch_lsn(), 60000));
    }

    Table s3("S3: read-tier scale-out (tree-hld, " +
                 std::to_string(static_cast<int>(kReplicaPairsPerSec / 1e3)) +
                 "k pairs/s per node, " + std::to_string(kClients) +
                 " clients)",
             {"replicas", "net Mops/s", "p50 ms", "p99 ms", "vs x1"});
    for (int n : {1, 2, 4}) {
      std::vector<std::string> errors(kClients);
      std::vector<std::vector<double>> latencies(kClients);
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      WallTimer timer;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c, n] {
          RunClient(nodes[static_cast<size_t>(c % n)].server->port(),
                    info.handle_id, pairs, kBatchesPerClient,
                    &errors[static_cast<size_t>(c)],
                    &latencies[static_cast<size_t>(c)]);
        });
      }
      for (std::thread& t : clients) t.join();
      double wall_s = timer.Ms() * 1e-3;
      for (const std::string& error : errors) {
        if (!error.empty()) {
          std::fprintf(stderr, "replica loadgen client failed: %s\n",
                       error.c_str());
          std::exit(1);
        }
      }
      double total_pairs =
          static_cast<double>(kClients) *
          (kBatchesPerClient + kWarmupBatchesPerClient) * kPairsPerBatch;
      ReplicaRow& row = replica_rows.emplace_back();
      row.replicas = n;
      row.ops_per_sec = total_pairs / wall_s;
      FillLatencyPercentiles(latencies, &row.p50_ms, &row.p99_ms);
      s3.Row()
          .Add(n)
          .Add(row.ops_per_sec / 1e6, 3)
          .Add(row.p50_ms, 3)
          .Add(row.p99_ms, 3)
          .Add(row.ops_per_sec / replica_rows.front().ops_per_sec, 3);
    }
    s3.Print();

    for (ReplicaNode& node : nodes) {
      node.replica->Stop();
      node.server->Stop();
    }
    coordinator.Stop();
  }

  net::ServerStats stats = OrDie(admin.Stats());
  std::printf("\nserver counters: %llu queries, %llu pairs, %llu releases, "
              "%llu overload-rejected\n",
              static_cast<unsigned long long>(stats.queries_served),
              static_cast<unsigned long long>(stats.pairs_served),
              static_cast<unsigned long long>(stats.releases_granted),
              static_cast<unsigned long long>(stats.overload_rejected));
  if (stats.has_accounting) {
    std::printf("budget position (%s policy): spent eps=%.3f, remaining "
                "eps=%.3f\n",
                AccountingPolicyName(static_cast<AccountingPolicy>(
                    stats.accounting_policy)),
                stats.spent_epsilon, stats.remaining_epsilon);
  }

  if (json_path != nullptr) {
    WriteJson(json_path, rows, mixed, replica_rows);
  }
  server.Stop();

  std::puts(
      "\nShape check: the wire adds per-batch framing + syscall cost, so "
      "net/direct\nclimbs toward 1 as mechanisms get slower per query; "
      "fast table lookups are\nsyscall-bound and land well below 1.");
}

}  // namespace
}  // namespace dpsp

int main(int argc, char** argv) {
  dpsp::Run(argc > 1 ? argv[1] : "BENCH_server.json");
  return 0;
}
