// Registry sweep: every registered mechanism family on one workload, one
// uniform report. The workload is an even canonical path graph, which
// satisfies every input family at once (path => tree => connected, and an
// even path has a perfect matching), so all nine registered oracles appear
// in a single table — adding a tenth is one Register() line in
// core/oracle_registry.cc.
//
// Three sections:
//  R1  registry sweep (V=256): build/batch/error per mechanism.
//  R2  one shared context serving several releases (the deployment view).
//  R3  serving throughput at scale (V=131072): steady-state DistanceBatch
//      vs the sharded BatchExecutor for the sub-quadratic mechanisms, and
//      bounded-weight build-time scaling with the multi-source Dijkstra
//      thread count.
//  R4  incremental update epochs vs full rebuild (tree-hld, random tree
//      V=65536): wall clock and charged epsilon at 1% / 5% / 25% dirty
//      fractions — the continual-release economics in one table.
//  R5  hardware-limit hot path: forced-scalar vs AVX2 DistanceInto
//      throughput (same release, same pairs — the dispatch is the only
//      variable) and the NUMA-aware sharded executor on top, at V=16384
//      and V=131072.
//
// Usage: bench_registry [out.csv] [out.json]
//   out.csv   the R1 rows as CSV
//   out.json  machine-readable R1 + R3 + R5 numbers (ops/sec per
//             mechanism, the build-scaling runs, and the scalar/AVX2/NUMA
//             series) — the CI perf-smoke artifact.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cpu.h"
#include "common/numa.h"
#include "core/baselines.h"
#include "core/bounded_weight.h"
#include "core/hld_oracle.h"
#include "core/tree_distance.h"
#include "graph/all_pairs.h"
#include "graph/generators.h"
#include "serve/batch_executor.h"

namespace dpsp {
namespace {

struct ThroughputRow {
  std::string mechanism;
  double build_ms = 0.0;
  BatchTiming batch;    // parallel DistanceBatch
  BatchTiming sharded;  // BatchExecutor, contiguous shards
};

struct ScalingRun {
  int threads = 0;
  double build_ms = 0.0;
};

/// One R5 row: the same release served under forced-scalar dispatch, the
/// ambient (AVX2 when available) dispatch, and the NUMA-aware sharded
/// executor on top of the ambient dispatch.
struct SimdRun {
  std::string mechanism;
  int v = 0;
  BatchTiming scalar;  // ScopedForceScalar DistanceBatch
  BatchTiming simd;    // ambient-dispatch DistanceBatch
  BatchTiming numa;    // ambient dispatch + NUMA-aware BatchExecutor
  int placed_buffers = 0;
};

/// One accounting policy's certified total for the R2b ledger.
struct PolicyTotal {
  AccountingPolicy policy = AccountingPolicy::kBasic;
  bool ok = false;
  double epsilon = 0.0;
  double delta = 0.0;
};

/// The R2b comparison: N identical releases composed under every policy.
struct AccountingSweep {
  int releases = 0;
  const char* release_kind = "";
  double per_release_epsilon = 0.0;
  double per_release_delta = 0.0;
  double delta_slack = 0.0;
  std::vector<PolicyTotal> totals;
  const char* best_policy = "";
  double best_epsilon = 0.0;
};

/// Composes `releases` copies of `loss` under each accounting policy and
/// reports every certified total plus the best (smallest-epsilon) one —
/// the number a deployment would quote for the whole ledger.
AccountingSweep SweepAccountingPolicies(int releases, const char* kind,
                                        const PrivacyLoss& loss,
                                        double delta_slack) {
  AccountingSweep sweep;
  sweep.releases = releases;
  sweep.release_kind = kind;
  sweep.per_release_epsilon = loss.epsilon;
  sweep.per_release_delta = loss.delta;
  sweep.delta_slack = delta_slack;
  for (AccountingPolicy policy :
       {AccountingPolicy::kBasic, AccountingPolicy::kAdvanced,
        AccountingPolicy::kZcdp}) {
    PolicyTotal& total = sweep.totals.emplace_back();
    total.policy = policy;
    std::unique_ptr<Accountant> accountant = Accountant::Create(policy);
    bool recorded = true;
    for (int i = 0; i < releases && recorded; ++i) {
      recorded = accountant->Record("release", loss).ok();
    }
    if (!recorded) continue;  // policy cannot compose this loss kind
    PrivacyParams certified = accountant->Total(delta_slack);
    total.ok = true;
    total.epsilon = certified.epsilon;
    total.delta = certified.delta;
    if (sweep.best_policy[0] == '\0' || total.epsilon < sweep.best_epsilon) {
      sweep.best_policy = AccountingPolicyName(policy);
      sweep.best_epsilon = total.epsilon;
    }
  }
  return sweep;
}

/// One R4 row: an update epoch at a given dirty fraction vs a full
/// rebuild of the same release.
struct UpdateEpochRun {
  /// How the dirty set is drawn: "uniform" (random edges of a random
  /// tree) or "leaf" (access-link edges of a caterpillar backbone, the
  /// localized-drift regime where the epoch's sensitivity collapses).
  const char* drift = "uniform";
  /// The workload the epoch ran on ("random-tree" / "caterpillar") —
  /// per-row because the two drift modes use different graphs.
  const char* graph = "random-tree";
  double dirty_fraction = 0.0;
  int dirty_edges = 0;
  int dirty_blocks = 0;
  double update_ms = 0.0;   // best epoch wall time
  double rebuild_ms = 0.0;  // best full MeteredBuild wall time
  double charged_eps = 0.0;
  double full_eps = 0.0;
  double deltas_per_sec = 0.0;
};

void WriteJson(const char* path, int sweep_v, size_t sweep_queries,
               const std::vector<SweepRowStats>& sweep, int big_v,
               size_t big_queries, const std::vector<ThroughputRow>& rows,
               int scaling_v, int scaling_k,
               const std::vector<ScalingRun>& scaling,
               const std::vector<AccountingSweep>& accounting,
               int update_v, const std::vector<UpdateEpochRun>& updates,
               size_t simd_queries, const std::vector<SimdRun>& simd) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not write JSON to %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_registry\",\n");
  std::fprintf(f,
               "  \"sweep\": {\"graph\": \"path\", \"V\": %d, \"queries\": "
               "%zu, \"mechanisms\": [\n",
               sweep_v, sweep_queries);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRowStats& r = sweep[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ok\": %s, \"build_ms\": %.4f, "
                 "\"batch_ms\": %.4f, \"ns_per_query\": %.2f, "
                 "\"ops_per_sec\": %.0f}%s\n",
                 r.mechanism.c_str(), r.ok ? "true" : "false", r.build_ms,
                 r.batch.best_ms, r.batch.ns_per_query, r.batch.ops_per_sec,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"throughput\": {\"graph\": \"path\", \"V\": %d, "
               "\"queries\": %zu, \"mechanisms\": [\n",
               big_v, big_queries);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"build_ms\": %.2f, "
        "\"batch_ns_per_query\": %.2f, \"batch_ops_per_sec\": %.0f, "
        "\"sharded_ns_per_query\": %.2f, \"sharded_ops_per_sec\": %.0f}%s\n",
        r.mechanism.c_str(), r.build_ms, r.batch.ns_per_query,
        r.batch.ops_per_sec, r.sharded.ns_per_query, r.sharded.ops_per_sec,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"bounded_weight_build_scaling\": {\"graph\": \"grid\", "
               "\"V\": %d, \"k\": %d, \"runs\": [\n",
               scaling_v, scaling_k);
  for (size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(f, "    {\"threads\": %d, \"build_ms\": %.2f}%s\n",
                 scaling[i].threads, scaling[i].build_ms,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  // R2b: each ledger's certified total under every accounting policy plus
  // the best-of-policies number a deployment would quote.
  std::fprintf(f, "  \"accounting\": [\n");
  for (size_t i = 0; i < accounting.size(); ++i) {
    const AccountingSweep& a = accounting[i];
    std::fprintf(f,
                 "    {\"release_kind\": \"%s\", \"releases\": %d, "
                 "\"per_release_eps\": %g, \"per_release_delta\": %g, "
                 "\"delta_slack\": %g, \"policies\": [\n",
                 a.release_kind, a.releases, a.per_release_epsilon,
                 a.per_release_delta, a.delta_slack);
    for (size_t j = 0; j < a.totals.size(); ++j) {
      const PolicyTotal& t = a.totals[j];
      if (t.ok) {
        std::fprintf(f,
                     "      {\"policy\": \"%s\", \"epsilon\": %.6f, "
                     "\"delta\": %g}%s\n",
                     AccountingPolicyName(t.policy), t.epsilon, t.delta,
                     j + 1 < a.totals.size() ? "," : "");
      } else {
        std::fprintf(f, "      {\"policy\": \"%s\", \"inapplicable\": true}%s\n",
                     AccountingPolicyName(t.policy),
                     j + 1 < a.totals.size() ? "," : "");
      }
    }
    std::fprintf(f,
                 "    ], \"best_policy\": \"%s\", \"best_epsilon\": %.6f}%s\n",
                 a.best_policy, a.best_epsilon,
                 i + 1 < accounting.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // R4: incremental update epochs vs full rebuild. deltas_per_sec is the
  // ops/sec series the perf-trajectory tracker watches.
  std::fprintf(f,
               "  \"updates\": {\"name\": \"tree-hld\", \"V\": %d, "
               "\"epochs\": [\n",
               update_v);
  for (size_t i = 0; i < updates.size(); ++i) {
    const UpdateEpochRun& u = updates[i];
    std::fprintf(f,
                 "    {\"drift\": \"%s\", \"graph\": \"%s\", "
                 "\"dirty_fraction\": %g, "
                 "\"dirty_edges\": %d, "
                 "\"dirty_blocks\": %d, \"update_ms\": %.3f, "
                 "\"rebuild_ms\": %.3f, \"speedup\": %.2f, "
                 "\"charged_eps\": %.6f, \"full_eps\": %.6f, "
                 "\"deltas_per_sec\": %.0f}%s\n",
                 u.drift, u.graph, u.dirty_fraction, u.dirty_edges,
                 u.dirty_blocks,
                 u.update_ms, u.rebuild_ms,
                 u.update_ms > 0.0 ? u.rebuild_ms / u.update_ms : 0.0,
                 u.charged_eps, u.full_eps, u.deltas_per_sec,
                 i + 1 < updates.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  // R5: the dispatch A/B (one release, forced-scalar vs ambient) and the
  // NUMA-aware executor series the perf-trajectory tracker watches.
  const NumaTopology& topo = NumaTopologyInfo();
  std::fprintf(f,
               "  \"simd\": {\"dispatch\": \"%s\", \"queries\": %zu, "
               "\"runs\": [\n",
               SimdDispatchDescription(), simd_queries);
  for (size_t i = 0; i < simd.size(); ++i) {
    const SimdRun& r = simd[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"V\": %d, "
                 "\"scalar_ops_per_sec\": %.0f, \"avx2_ops_per_sec\": %.0f, "
                 "\"speedup\": %.3f}%s\n",
                 r.mechanism.c_str(), r.v, r.scalar.ops_per_sec,
                 r.simd.ops_per_sec,
                 r.scalar.ops_per_sec > 0.0
                     ? r.simd.ops_per_sec / r.scalar.ops_per_sec
                     : 0.0,
                 i + 1 < simd.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"numa\": {\"nodes\": %d, \"source\": \"%s\", "
               "\"runs\": [\n",
               topo.num_nodes, topo.source);
  for (size_t i = 0; i < simd.size(); ++i) {
    const SimdRun& r = simd[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"V\": %d, \"ops_per_sec\": %.0f, "
                 "\"placed_buffers\": %d}%s\n",
                 r.mechanism.c_str(), r.v, r.numa.ops_per_sec,
                 r.placed_buffers, i + 1 < simd.size() ? "," : "");
  }
  std::fprintf(f, "  ]}\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path);
}

void Run(const char* csv_path, const char* json_path) {
  Rng rng(kBenchSeed);
  const int n = 256;  // even => perfect matching exists
  Graph g = OrDie(MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));
  std::vector<VertexPair> pairs = SamplePairs(n, 20000, &rng);

  SweepOptions options;
  options.params = PrivacyParams{/*epsilon=*/1.0, 0.0, 1.0};
  options.input = OracleInput::kPath;
  options.has_perfect_matching = true;
  // A fresh stream: reusing kBenchSeed would replay the PRNG stream that
  // generated the private weights, correlating noise with data.
  options.seed = rng.NextSeed();

  Table table = MakeSweepTable(
      "R1: registry sweep, path graph V=256, eps=1, 20k batched queries");
  std::vector<SweepRowStats> sweep_stats =
      AppendSweepRows(table, g, w, exact, pairs, options);
  table.Print();
  if (csv_path != nullptr) {
    if (table.WriteCsv(csv_path)) {
      std::printf("\nCSV written to %s\n", csv_path);
    } else {
      std::fprintf(stderr, "\ncould not write CSV to %s\n", csv_path);
    }
  }

  // R2: one shared context serving several releases — the deployment view.
  // The accountant meters each release and the total budget stops
  // overspending before any noise is drawn.
  ReleaseContext ctx =
      OrDie(ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kBenchSeed));
  ctx.SetTotalBudget(PrivacyParams{2.5, 0.0, 1.0});
  OrDie(TreeAllPairsOracle::Build(g, w, ctx));
  OrDie(MakeSyntheticGraphOracle(g, w, ctx));
  auto third = TreeAllPairsOracle::Build(g, w, ctx);  // would exceed 2.5
  std::printf("\n%s\n", ctx.ToString().c_str());
  std::printf("third release within eps=2.5 budget: %s\n",
              third.ok() ? "allowed (unexpected!)"
                         : third.status().ToString().c_str());

  // R2b: the same ledger composed under every accounting policy. A
  // Laplace refresh schedule (96 pure releases) and a Gaussian one (32
  // releases metered at their natural zCDP rate) — the best-of-policies
  // epsilon is the number a deployment would quote.
  const double kSlack = 1e-6;
  std::vector<AccountingSweep> accounting;
  accounting.push_back(SweepAccountingPolicies(
      96, "laplace-pure", PrivacyLoss::Pure(0.05), kSlack));
  accounting.push_back(SweepAccountingPolicies(
      32, "gaussian",
      OrDie(PrivacyLoss::GaussianFromParams(PrivacyParams{0.5, 1e-6, 1.0})),
      kSlack));
  Table accounting_table(
      "R2b: certified total epsilon by accounting policy (delta'=1e-6)",
      {"ledger", "basic", "advanced", "zcdp", "best"});
  for (const AccountingSweep& a : accounting) {
    Table& row = accounting_table.Row().Add(
        StrFormat("%dx %s eps=%g", a.releases, a.release_kind,
                  a.per_release_epsilon));
    for (const PolicyTotal& t : a.totals) {
      if (t.ok) {
        row.Add(t.epsilon, 4);
      } else {
        row.Add("-");
      }
    }
    row.Add(a.best_policy);
  }
  accounting_table.Print();

  // R3a: serving throughput at scale, restricted to the sub-quadratic
  // mechanisms (the dense-matrix baselines would need V^2 memory here).
  const int big_n = 131072;
  const int big_queries = 200000;
  Graph big = OrDie(MakePathGraph(big_n));
  EdgeWeights big_w = MakeUniformWeights(big, 0.1, 0.9, &rng);
  std::vector<VertexPair> big_pairs = SamplePairs(big_n, big_queries, &rng);
  BatchExecutor executor;  // contiguous shards, one per worker

  Table throughput(
      "R3: serving throughput, path V=131072, 200k queries "
      "(steady state, warmup excluded)",
      {"mechanism", "build_ms", "batch ns/q", "batch Mops/s",
       "sharded ns/q", "sharded Mops/s"});
  std::vector<ThroughputRow> rows;
  for (const char* name :
       {"tree-recursive", "tree-hld", "path-hierarchy", "bounded-weight",
        "private-mst"}) {
    ReleaseContext big_ctx = OrDie(ReleaseContext::Create(
        PrivacyParams{1.0, 0.0, 1.0}, rng.NextSeed()));
    WallTimer build_timer;
    auto oracle =
        OrDie(OracleRegistry::Global().Create(name, big, big_w, big_ctx));
    ThroughputRow& row = rows.emplace_back();
    row.mechanism = name;
    row.build_ms = build_timer.Ms();
    row.batch = TimeDistanceBatch(*oracle, big_pairs);
    row.sharded = TimeBatchRunner(big_pairs.size(), 1, 3, [&] {
      return OrDie(executor.Execute(*oracle, big_pairs)).front();
    });
    throughput.Row()
        .Add(name)
        .Add(row.build_ms, 2)
        .Add(row.batch.ns_per_query, 2)
        .Add(row.batch.ops_per_sec / 1e6, 2)
        .Add(row.sharded.ns_per_query, 2)
        .Add(row.sharded.ops_per_sec / 1e6, 2);
  }
  throughput.Print();

  // R3b: bounded-weight build-time scaling with the multi-source Dijkstra
  // thread count (the Z-center distance computation dominates the build).
  const int grid_side = 120;
  const int scaling_k = 30;
  Graph grid = OrDie(MakeGridGraph(grid_side, grid_side));
  EdgeWeights grid_w = MakeUniformWeights(grid, 0.1, 1.0, &rng);
  BoundedWeightOptions bw;
  bw.params = PrivacyParams{1.0, 0.0, 1.0};
  bw.k = scaling_k;
  std::vector<ScalingRun> scaling;
  Table scaling_table(
      "R3b: bounded-weight build vs threads (grid 120x120, k=30)",
      {"threads", "build_ms", "speedup"});
  int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> thread_counts;
  for (int threads : {1, 2, hw}) {
    if (std::find(thread_counts.begin(), thread_counts.end(), threads) ==
        thread_counts.end()) {
      thread_counts.push_back(threads);  // dedupe on small machines
    }
  }
  for (int threads : thread_counts) {
    bw.build_threads = threads;
    Rng noise_rng(kBenchNoiseSeed);
    WallTimer timer;
    OrDie(BoundedWeightOracle::Build(grid, grid_w, bw, &noise_rng));
    ScalingRun run;
    run.threads = threads;
    run.build_ms = timer.Ms();
    scaling.push_back(run);
    scaling_table.Row()
        .Add(threads)
        .Add(run.build_ms, 2)
        .Add(scaling.front().build_ms / run.build_ms, 2);
  }
  scaling_table.Print();

  // R4: incremental update epochs vs full rebuild. A random tree (not a
  // path) so the heavy-light decomposition has many chains of varying
  // depth — the regime where a small dirty set hits a shallower stack
  // than the full release's sensitivity and the epoch charge drops below
  // the full epsilon, not just the wall clock.
  const int update_v = 65536;
  const double full_eps = 1.0;
  Table update_table(
      "R4: incremental update epoch vs full rebuild (tree-hld, V=65536, "
      "eps=1)",
      {"drift", "dirty %", "edges", "dirty blocks", "update_ms",
       "rebuild_ms", "speedup", "charged eps", "full eps"});
  std::vector<UpdateEpochRun> updates;
  // Epoch harness: builds one release, times the best full rebuild, then
  // runs 3 epochs per dirty fraction with edges drawn from [lo, hi).
  auto run_epochs = [&](const char* drift, const char* graph_label,
                        const Graph& tree, const EdgeWeights& weights,
                        EdgeId edge_lo, EdgeId edge_hi,
                        std::span<const double> fractions) {
    ReleaseContext ctx = OrDie(ReleaseContext::Create(
        PrivacyParams{full_eps, 0.0, 1.0}, rng.NextSeed()));
    auto oracle = OrDie(OracleRegistry::Global().Create(
        HldTreeOracle::kName, tree, weights, ctx));
    UpdatableDistanceOracle* updatable = oracle->AsUpdatable();
    double rebuild_ms = 0.0;
    for (int run = 0; run < 3; ++run) {
      ReleaseContext rebuild_ctx = OrDie(ReleaseContext::Create(
          PrivacyParams{full_eps, 0.0, 1.0}, rng.NextSeed()));
      WallTimer timer;
      OrDie(OracleRegistry::Global().Create(HldTreeOracle::kName, tree,
                                            weights, rebuild_ctx));
      double ms = timer.Ms();
      if (run == 0 || ms < rebuild_ms) rebuild_ms = ms;
    }
    for (double fraction : fractions) {
      int k = std::max(1, static_cast<int>(fraction * tree.num_edges()));
      UpdateEpochRun run;
      run.drift = drift;
      run.graph = graph_label;
      run.dirty_fraction = fraction;
      run.dirty_edges = k;
      run.full_eps = full_eps;
      run.rebuild_ms = rebuild_ms;
      for (int epoch = 0; epoch < 3; ++epoch) {
        std::vector<EdgeWeightDelta> deltas;
        deltas.reserve(static_cast<size_t>(k));
        for (int i = 0; i < k; ++i) {
          deltas.push_back(
              {static_cast<EdgeId>(rng.UniformInt(edge_lo, edge_hi - 1)),
               rng.Uniform(0.1, 0.9)});
        }
        WallTimer timer;
        OrDie(updatable->ApplyWeightUpdates(deltas, ctx));
        double ms = timer.Ms();
        if (epoch == 0 || ms < run.update_ms) run.update_ms = ms;
        run.dirty_blocks = updatable->last_update().dirty_blocks;
        run.charged_eps = updatable->last_update().charged_epsilon;
      }
      run.deltas_per_sec = k / (run.update_ms * 1e-3);
      updates.push_back(run);
      update_table.Row()
          .Add(drift)
          .Add(StrFormat("%.0f%%", fraction * 100))
          .Add(run.dirty_edges)
          .Add(run.dirty_blocks)
          .Add(run.update_ms, 3)
          .Add(run.rebuild_ms, 3)
          .Add(run.rebuild_ms / run.update_ms, 2)
          .Add(run.charged_eps, 4)
          .Add(run.full_eps, 4);
    }
  };
  // Uniform drift over a random tree: the wall-clock economics. A random
  // dirty set almost surely touches the deepest chain, so the charge
  // stays at the full epsilon — the honest worst case.
  Graph random_tree = OrDie(MakeRandomTree(update_v, &rng));
  EdgeWeights random_w = MakeUniformWeights(random_tree, 0.1, 0.9, &rng);
  const double all_fractions[] = {0.01, 0.05, 0.25};
  run_epochs("uniform", "random-tree", random_tree, random_w, 0,
             random_tree.num_edges(), all_fractions);
  // Leaf-local drift over a caterpillar backbone: only access-link (leg)
  // edges drift. Legs are light edges of the decomposition — the epoch's
  // sensitivity collapses to 1 and the charge to eps / sensitivity, the
  // privacy economics of localized continual release.
  const int spine = update_v / 8;
  Graph caterpillar = OrDie(MakeCaterpillarTree(spine, /*legs=*/7));
  EdgeWeights caterpillar_w = MakeUniformWeights(caterpillar, 0.1, 0.9, &rng);
  // Excludes the last spine vertex's legs: with no further spine vertex,
  // its heaviest child IS a leg, which extends the deepest chain — the
  // one leg whose drift would reinstate the full sensitivity.
  const double leaf_fractions[] = {0.01, 0.05};
  run_epochs("leaf", "caterpillar", caterpillar, caterpillar_w,
             /*edge_lo=*/static_cast<EdgeId>(spine - 1),
             /*edge_hi=*/caterpillar.num_edges() - 7, leaf_fractions);
  update_table.Print();

  // R5: hardware-limit hot path. One release per (mechanism, V); the
  // scalar and AVX2 legs run the identical DistanceBatch on it (results
  // are bit-identical — tests/simd_conformance_test.cc — so the dispatch
  // is the only variable), then the NUMA-aware executor serves the same
  // pairs with the released buffers interleaved across nodes. On this
  // machine: dispatch and topology are printed with the table; on
  // single-node boxes the numa column reduces to sharded execution.
  const size_t simd_queries = 200000;
  std::vector<SimdRun> simd_runs;
  Table simd_table(
      StrFormat("R5: scalar vs AVX2 vs AVX2+NUMA serving (path graph, "
                "200k queries; dispatch=%s, numa nodes=%d)",
                SimdDispatchDescription(), NumaTopologyInfo().num_nodes),
      {"mechanism", "V", "scalar Mops/s", "avx2 Mops/s", "avx2/scalar",
       "numa Mops/s", "numa/scalar", "placed"});
  BatchExecutor numa_executor;  // numa_aware defaults on
  for (int simd_v : {16384, 131072}) {
    Graph simd_g = OrDie(MakePathGraph(simd_v));
    EdgeWeights simd_w = MakeUniformWeights(simd_g, 0.1, 0.9, &rng);
    std::vector<VertexPair> simd_pairs =
        SamplePairs(simd_v, static_cast<int>(simd_queries), &rng);
    for (const char* name :
         {"tree-recursive", "tree-hld", "bounded-weight"}) {
      ReleaseContext simd_ctx = OrDie(ReleaseContext::Create(
          PrivacyParams{1.0, 0.0, 1.0}, rng.NextSeed()));
      auto oracle = OrDie(
          OracleRegistry::Global().Create(name, simd_g, simd_w, simd_ctx));
      SimdRun& run = simd_runs.emplace_back();
      run.mechanism = name;
      run.v = simd_v;
      {
        ScopedForceScalar force(true);
        run.scalar = TimeDistanceBatch(*oracle, simd_pairs);
      }
      run.simd = TimeDistanceBatch(*oracle, simd_pairs);
      run.placed_buffers = numa_executor.PlaceReleasedBuffers(*oracle);
      run.numa = TimeBatchRunner(simd_pairs.size(), 1, 3, [&] {
        return OrDie(numa_executor.Execute(*oracle, simd_pairs)).front();
      });
      if (run.scalar.front != run.simd.front ||
          run.simd.front != run.numa.front) {
        std::abort();  // dispatch must never change results
      }
      simd_table.Row()
          .Add(name)
          .Add(simd_v)
          .Add(run.scalar.ops_per_sec / 1e6, 2)
          .Add(run.simd.ops_per_sec / 1e6, 2)
          .Add(run.simd.ops_per_sec / run.scalar.ops_per_sec, 2)
          .Add(run.numa.ops_per_sec / 1e6, 2)
          .Add(run.numa.ops_per_sec / run.scalar.ops_per_sec, 2)
          .Add(run.placed_buffers);
    }
  }
  simd_table.Print();

  if (json_path != nullptr) {
    WriteJson(json_path, n, pairs.size(), sweep_stats, big_n,
              big_pairs.size(), rows, grid_side * grid_side, scaling_k,
              scaling, accounting, update_v, updates, simd_queries,
              simd_runs);
  }

  std::puts(
      "\nShape check: every mechanism builds once through the shared "
      "pipeline and the\nbatched path answers at memory speed; the sharded "
      "executor matches DistanceBatch\nbit-for-bit while pinning shards to "
      "workers. Bounded-weight build time drops as\nthe Z-center Dijkstra "
      "fan-out widens (R3b).");
}

}  // namespace
}  // namespace dpsp

int main(int argc, char** argv) {
  dpsp::Run(argc > 1 ? argv[1] : nullptr, argc > 2 ? argv[2] : nullptr);
  return 0;
}
