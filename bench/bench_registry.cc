// Registry sweep: every registered mechanism family on one workload, one
// uniform report. The workload is an even canonical path graph, which
// satisfies every input family at once (path => tree => connected, and an
// even path has a perfect matching), so all nine registered oracles appear
// in a single table — adding a tenth is one Register() line in
// core/oracle_registry.cc.
//
// Usage: bench_registry [out.csv]  (optionally writes the same rows as CSV)

#include <cstdio>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/tree_distance.h"
#include "graph/all_pairs.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void Run(const char* csv_path) {
  Rng rng(kBenchSeed);
  const int n = 256;  // even => perfect matching exists
  Graph g = OrDie(MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));
  std::vector<VertexPair> pairs = SamplePairs(n, 20000, &rng);

  SweepOptions options;
  options.params = PrivacyParams{/*epsilon=*/1.0, 0.0, 1.0};
  options.input = OracleInput::kPath;
  options.has_perfect_matching = true;
  // A fresh stream: reusing kBenchSeed would replay the PRNG stream that
  // generated the private weights, correlating noise with data.
  options.seed = rng.NextSeed();

  Table table = MakeSweepTable(
      "R1: registry sweep, path graph V=256, eps=1, 20k batched queries");
  AppendSweepRows(table, g, w, exact, pairs, options);
  table.Print();
  if (csv_path != nullptr) {
    if (table.WriteCsv(csv_path)) {
      std::printf("\nCSV written to %s\n", csv_path);
    } else {
      std::fprintf(stderr, "\ncould not write CSV to %s\n", csv_path);
    }
  }

  // R2: one shared context serving several releases — the deployment view.
  // The accountant meters each release and the total budget stops
  // overspending before any noise is drawn.
  ReleaseContext ctx =
      OrDie(ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kBenchSeed));
  ctx.SetTotalBudget(PrivacyParams{2.5, 0.0, 1.0});
  OrDie(TreeAllPairsOracle::Build(g, w, ctx));
  OrDie(MakeSyntheticGraphOracle(g, w, ctx));
  auto third = TreeAllPairsOracle::Build(g, w, ctx);  // would exceed 2.5
  std::printf("\n%s\n", ctx.ToString().c_str());
  std::printf("third release within eps=2.5 budget: %s\n",
              third.ok() ? "allowed (unexpected!)"
                         : third.status().ToString().c_str());
}

}  // namespace
}  // namespace dpsp

int main(int argc, char** argv) {
  dpsp::Run(argc > 1 ? argv[1] : nullptr);
  return 0;
}
