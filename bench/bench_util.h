// Shared helpers for the experiment harnesses in bench/.

#ifndef DPSP_BENCH_BENCH_UTIL_H_
#define DPSP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// Fixed seed for all harnesses: every run of every bench binary prints the
/// same numbers.
inline constexpr uint64_t kBenchSeed = 0x9a9e52016ULL;

/// Unwraps a Result in a harness; aborts with the status on failure.
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench failure: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void OrDie(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failure: %s\n", status.ToString().c_str());
    std::abort();
  }
}

/// `count` evaluation pairs sampled uniformly (u != v), deterministic.
inline std::vector<std::pair<VertexId, VertexId>> SamplePairs(int n, int count,
                                                              Rng* rng) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(static_cast<size_t>(count));
  while (static_cast<int>(pairs.size()) < count) {
    VertexId u = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    VertexId v = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    if (u != v) pairs.emplace_back(u, v);
  }
  return pairs;
}

}  // namespace dpsp

#endif  // DPSP_BENCH_BENCH_UTIL_H_
