// Shared helpers for the experiment harnesses in bench/. Timing and CSV
// rendering live in common/table.h (WallTimer, Table::ToCsv); this header
// only adds the bench-specific glue: OrDie unwrapping, deterministic pair
// sampling, and the uniform registry sweep every mechanism harness uses.

#ifndef DPSP_BENCH_BENCH_UTIL_H_
#define DPSP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/statistics.h"
#include "common/status.h"
#include "common/table.h"
#include "core/oracle_registry.h"
#include "dp/release_context.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace dpsp {

/// Fixed seed for all harnesses: every run of every bench binary prints the
/// same numbers.
inline constexpr uint64_t kBenchSeed = 0x9a9e52016ULL;

/// Default seed for the NOISE stream of registry sweeps. Deliberately
/// distinct from kBenchSeed: reusing the data-generating seed would replay
/// the PRNG stream that produced the private weights, correlating noise
/// with data.
inline constexpr uint64_t kBenchNoiseSeed = 0xb10c5eed2016ULL;

/// Unwraps a Result in a harness; aborts with the status on failure.
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench failure: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void OrDie(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failure: %s\n", status.ToString().c_str());
    std::abort();
  }
}

/// `count` evaluation pairs sampled uniformly (u != v), deterministic.
inline std::vector<std::pair<VertexId, VertexId>> SamplePairs(int n, int count,
                                                              Rng* rng) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(static_cast<size_t>(count));
  while (static_cast<int>(pairs.size()) < count) {
    VertexId u = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    VertexId v = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    if (u != v) pairs.emplace_back(u, v);
  }
  return pairs;
}

/// Steady-state batch timing. The first (warmup) runs are excluded so
/// first-touch page faults, lazy allocation, and cold caches do not skew
/// batch-vs-loop comparisons; the reported number is the best of `reps`
/// timed runs, in per-query nanoseconds.
struct BatchTiming {
  double best_ms = 0.0;       // best timed run, milliseconds
  double ns_per_query = 0.0;  // best_ms scaled to one query
  double ops_per_sec = 0.0;   // queries per second at best_ms
  /// First result of the last run (defeats dead-code elimination).
  double front = 0.0;
};

/// Times oracle.DistanceBatch(pairs) with `warmup` untimed runs followed
/// by `reps` timed runs; aborts on query failure.
inline BatchTiming TimeDistanceBatch(const DistanceOracle& oracle,
                                     const std::vector<VertexPair>& pairs,
                                     int warmup = 1, int reps = 3) {
  BatchTiming timing;
  if (pairs.empty()) return timing;
  for (int i = 0; i < warmup; ++i) {
    timing.front = OrDie(oracle.DistanceBatch(pairs)).front();
  }
  timing.best_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    std::vector<double> out = OrDie(oracle.DistanceBatch(pairs));
    timing.best_ms = std::min(timing.best_ms, timer.Ms());
    timing.front = out.front();
  }
  timing.ns_per_query =
      timing.best_ms * 1e6 / static_cast<double>(pairs.size());
  timing.ops_per_sec =
      static_cast<double>(pairs.size()) / (timing.best_ms * 1e-3);
  return timing;
}

/// Same steady-state protocol for an arbitrary batch runner (e.g. the
/// sharded BatchExecutor or a serial reference loop).
inline BatchTiming TimeBatchRunner(
    size_t num_queries, int warmup, int reps,
    const std::function<double()>& run_batch_returning_front) {
  BatchTiming timing;
  if (num_queries == 0) return timing;
  for (int i = 0; i < warmup; ++i) {
    timing.front = run_batch_returning_front();
  }
  timing.best_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    timing.front = run_batch_returning_front();
    timing.best_ms = std::min(timing.best_ms, timer.Ms());
  }
  timing.ns_per_query =
      timing.best_ms * 1e6 / static_cast<double>(num_queries);
  timing.ops_per_sec =
      static_cast<double>(num_queries) / (timing.best_ms * 1e-3);
  return timing;
}

/// Configuration of a uniform registry sweep.
struct SweepOptions {
  PrivacyParams params;
  /// The workload's input family; picks the applicable mechanisms.
  OracleInput input = OracleInput::kAnyConnected;
  bool has_perfect_matching = false;
  /// Noise seed; keep it independent of the stream that generated the
  /// weights (e.g. data_rng.NextSeed()).
  uint64_t seed = kBenchNoiseSeed;
};

/// The uniform report shape every registry sweep emits. Pass the result to
/// AppendSweepRows and render with Print() or ToCsv(). `batch_ms` and
/// `ns/query` are steady-state numbers (warmup excluded, best of three).
inline Table MakeSweepTable(const std::string& title) {
  return Table(title, {"mechanism", "build_ms", "batch_ms", "ns/query",
                       "mean|err|", "p95|err|", "max|err|"});
}

/// One sweep row's raw numbers, for harnesses that also emit JSON.
struct SweepRowStats {
  std::string mechanism;
  bool ok = false;
  double build_ms = 0.0;
  BatchTiming batch;
};

/// Appends one row per applicable registered mechanism: builds the oracle
/// through OracleRegistry::Create with a fresh ReleaseContext, times the
/// build and the steady-state DistanceBatch over `pairs` (warmup run
/// excluded, best of three), and reports batched-query error against
/// `exact`. Mechanisms whose build fails on this workload get an error row
/// instead of aborting the sweep. Adding a mechanism to every harness that
/// calls this is one Register() line. Returns the raw per-row numbers.
inline std::vector<SweepRowStats> AppendSweepRows(
    Table& table, const Graph& graph, const EdgeWeights& w,
    const DistanceMatrix& exact, const std::vector<VertexPair>& pairs,
    const SweepOptions& options) {
  std::vector<SweepRowStats> stats;
  const OracleRegistry& registry = OracleRegistry::Global();
  for (const std::string& name :
       registry.NamesForInput(options.input, options.has_perfect_matching)) {
    // The sweep params cannot fund a zCDP-metered (Gaussian-calibrated)
    // mechanism unless they are approximate with eps < 1; skip instead of
    // emitting a guaranteed error row.
    const OracleSpec* spec = registry.Find(name);
    if (spec != nullptr && spec->loss == LossKind::kZcdp &&
        (options.params.pure() || options.params.epsilon >= 1.0)) {
      continue;
    }
    // Per-mechanism seed: same-seed contexts would replay identical noise
    // across rows, making distinct mechanisms spuriously agree.
    uint64_t seed = options.seed ^ std::hash<std::string>{}(name);
    ReleaseContext ctx =
        OrDie(ReleaseContext::Create(options.params, seed));
    WallTimer build_timer;
    Result<std::unique_ptr<DistanceOracle>> oracle =
        registry.Create(name, graph, w, ctx);
    SweepRowStats& row = stats.emplace_back();
    row.mechanism = name;
    if (!oracle.ok()) {
      table.Row()
          .Add(name)
          .Add("-")
          .Add("-")
          .Add("-")
          .Add(oracle.status().ToString())
          .Add("-")
          .Add("-");
      continue;
    }
    row.ok = true;
    row.build_ms = build_timer.Ms();
    row.batch = TimeDistanceBatch(**oracle, pairs);
    // Error columns come from one more (untimed) batch — identical to the
    // timed ones because queries are deterministic post-processing.
    std::vector<double> estimates = OrDie((*oracle)->DistanceBatch(pairs));
    std::vector<double> errors;
    errors.reserve(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      double truth = exact.at(pairs[i].first, pairs[i].second);
      if (truth == kInfiniteDistance) continue;  // unreachable: skip
      errors.push_back(std::fabs(estimates[i] - truth));
    }
    table.Row()
        .Add(name)
        .Add(row.build_ms, 4)
        .Add(row.batch.best_ms, 4)
        .Add(row.batch.ns_per_query, 2);
    if (errors.empty()) {
      table.Add("-").Add("-").Add("-");
    } else {
      table.Add(Mean(errors), 4)
          .Add(Quantile(errors, 0.95), 4)
          .Add(MaxAbs(errors), 4);
    }
  }
  return stats;
}

}  // namespace dpsp

#endif  // DPSP_BENCH_BENCH_UTIL_H_
