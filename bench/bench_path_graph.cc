// Experiment E3 (Theorem A.1 / DNPR10): all-pairs distances on the path
// graph. Compares the Appendix-A hub hierarchy against the Section-4.1
// tree recursion (they should land in the same polylog regime) and against
// the per-pair composition baselines.

#include <cmath>
#include <string>

#include "bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/baselines.h"
#include "core/path_graph.h"
#include "core/tree_distance.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void Run() {
  const double eps = 1.0;
  PrivacyParams pure{eps, 0.0, 1.0};
  PrivacyParams approx{eps, 1e-6, 1.0};

  Table table("E3: Theorem A.1 path-graph all-pairs distances (eps=1)",
              {"V", "mechanism", "mean|err|", "p95|err|", "max|err|",
               "bound"});
  Rng rng(kBenchSeed);
  for (int n : {256, 1024, 4096, 16384}) {
    Graph g = OrDie(MakePathGraph(n));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);

    // Exact prefix sums for fast pairwise truth on the path.
    std::vector<double> prefix(static_cast<size_t>(n), 0.0);
    for (int i = 1; i < n; ++i) {
      prefix[static_cast<size_t>(i)] =
          prefix[static_cast<size_t>(i - 1)] + w[static_cast<size_t>(i - 1)];
    }
    auto pairs = SamplePairs(n, 4000, &rng);

    auto evaluate = [&](const DistanceOracle& oracle, double bound) {
      std::vector<double> errors;
      errors.reserve(pairs.size());
      for (const auto& [u, v] : pairs) {
        double truth = std::fabs(prefix[static_cast<size_t>(v)] -
                                 prefix[static_cast<size_t>(u)]);
        double est = OrDie(oracle.Distance(u, v));
        errors.push_back(std::fabs(est - truth));
      }
      table.Row()
          .Add(n)
          .Add(oracle.Name())
          .Add(Mean(errors), 4)
          .Add(Quantile(errors, 0.95), 4)
          .Add(MaxAbs(errors), 4)
          .Add(bound > 0 ? StrFormat("%.4g", bound) : std::string("-"));
    };

    auto hierarchy = OrDie(PathGraphOracle::Build(g, w, pure, &rng));
    evaluate(*hierarchy,
             PathGraphErrorBound(n, pure, 0.05 / pairs.size()));
    auto tree = OrDie(TreeAllPairsOracle::Build(g, w, pure, &rng));
    evaluate(*tree, TreeAllPairsErrorBound(n, pure, 0.05 / pairs.size()));
    if (n <= 1024) {  // dense baselines are quadratic in memory/time
      auto per_pair = OrDie(MakePerPairLaplaceOracle(g, w, approx, &rng));
      evaluate(*per_pair, 0.0);
    }
  }
  table.Print();

  // Ablation: the Appendix-A branching knob (hub spacing ratio V^{1/k}).
  // Fewer levels lower the release sensitivity but each query must sum
  // more (b-1 per level) segments; the paper's k = log V (b = 2) is near
  // the sweet spot.
  Table ablation("E3b: Appendix-A hub branching ablation (V=4096, eps=1)",
                 {"branching b", "levels", "noise scale", "mean|err|",
                  "max|err|"});
  int n = 4096;
  Graph g = OrDie(MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  std::vector<double> prefix(static_cast<size_t>(n), 0.0);
  for (int i = 1; i < n; ++i) {
    prefix[static_cast<size_t>(i)] =
        prefix[static_cast<size_t>(i - 1)] + w[static_cast<size_t>(i - 1)];
  }
  auto pairs = SamplePairs(n, 3000, &rng);
  for (int b : {2, 4, 8, 16, 64}) {
    auto oracle = OrDie(PathGraphOracle::Build(g, w, pure, &rng, b));
    std::vector<double> errors;
    errors.reserve(pairs.size());
    for (const auto& [u, v] : pairs) {
      double truth = std::fabs(prefix[static_cast<size_t>(v)] -
                               prefix[static_cast<size_t>(u)]);
      errors.push_back(std::fabs(OrDie(oracle->Distance(u, v)) - truth));
    }
    ablation.Row()
        .Add(b)
        .Add(oracle->num_levels())
        .Add(oracle->noise_scale(), 4)
        .Add(Mean(errors), 4)
        .Add(MaxAbs(errors), 4);
  }
  ablation.Print();
  std::puts(
      "\nShape check: path-hierarchy and tree-recursive agree to within "
      "constants\n(polylog V), while per-pair-laplace(approx) error scales "
      "linearly with V.\nAblation: moderate branching factors trade levels "
      "vs segments; extremes lose.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
