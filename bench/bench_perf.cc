// P1: substrate and mechanism throughput (google-benchmark). These are the
// raw-performance numbers a downstream adopter cares about: everything in
// the paper is a polynomial-time algorithm and should remain fast at
// realistic network sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/bounded_weight.h"
#include "core/path_graph.h"
#include "core/private_shortest_path.h"
#include "core/tree_distance.h"
#include "graph/covering.h"
#include "graph/generators.h"
#include "graph/matching.h"
#include "graph/spanning_tree.h"
#include "graph/tree.h"

namespace dpsp {
namespace {

void BM_DijkstraGrid(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int side = static_cast<int>(state.range(0));
  Graph g = OrDie(MakeGridGraph(side, side));
  EdgeWeights w = MakeUniformWeights(g, 0.5, 2.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dijkstra(g, w, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DijkstraGrid)->Arg(32)->Arg(64)->Arg(128);

void BM_KruskalErdosRenyi(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int n = static_cast<int>(state.range(0));
  Graph g = OrDie(MakeConnectedErdosRenyi(n, 10.0 / n, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KruskalMst(g, w));
  }
}
BENCHMARK(BM_KruskalErdosRenyi)->Arg(1000)->Arg(10000);

void BM_LcaBuildAndQuery(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int n = static_cast<int>(state.range(0));
  Graph g = OrDie(MakeRandomTree(n, &rng));
  RootedTree tree = OrDie(RootedTree::FromGraph(g, 0));
  LcaIndex lca(tree);
  VertexId u = 0;
  for (auto _ : state) {
    u = (u + 37) % n;
    benchmark::DoNotOptimize(lca.Lca(u, (u * 7 + 11) % n));
  }
}
BENCHMARK(BM_LcaBuildAndQuery)->Arg(1024)->Arg(65536);

void BM_MM75Covering(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int n = static_cast<int>(state.range(0));
  Graph g = OrDie(MakeConnectedErdosRenyi(n, 6.0 / n, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MM75ResidueCovering(g, 4));
  }
}
BENCHMARK(BM_MM75Covering)->Arg(1000)->Arg(10000);

void BM_TreeSingleSourceRelease(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int n = static_cast<int>(state.range(0));
  Graph g = OrDie(MakeRandomTree(n, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng));
  }
}
BENCHMARK(BM_TreeSingleSourceRelease)->Arg(1024)->Arg(16384);

void BM_PathOracleBuild(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int n = static_cast<int>(state.range(0));
  Graph g = OrDie(MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PathGraphOracle::Build(g, w, params, &rng));
  }
}
BENCHMARK(BM_PathOracleBuild)->Arg(4096)->Arg(65536);

void BM_PathOracleQuery(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int n = 65536;
  Graph g = OrDie(MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  auto oracle = OrDie(PathGraphOracle::Build(g, w, params, &rng));
  VertexId u = 0;
  for (auto _ : state) {
    u = (u + 9973) % n;
    benchmark::DoNotOptimize(oracle->Distance(u, (u * 31 + 17) % n));
  }
}
BENCHMARK(BM_PathOracleQuery);

void BM_Algorithm3Release(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int side = static_cast<int>(state.range(0));
  RoadNetwork network =
      OrDie(MakeSyntheticRoadNetwork(side, side, 0.25, &rng));
  EdgeWeights traffic = MakeCongestionWeights(network, 5, 3.0, &rng);
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{1.0, 0.0, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PrivateShortestPaths::Release(network.graph, traffic, options, &rng));
  }
}
BENCHMARK(BM_Algorithm3Release)->Arg(16)->Arg(64);

void BM_BoundedWeightBuild(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int n = static_cast<int>(state.range(0));
  Graph g = OrDie(MakeConnectedErdosRenyi(n, 6.0 / n, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  BoundedWeightOptions options;
  options.params = PrivacyParams{1.0, 1e-6, 1.0};
  options.max_weight = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedWeightOracle::Build(g, w, options, &rng));
  }
}
BENCHMARK(BM_BoundedWeightBuild)->Arg(200)->Arg(800);

void BM_HungarianMatching(benchmark::State& state) {
  Rng rng(kBenchSeed);
  int side = static_cast<int>(state.range(0));
  Graph g = OrDie(MakeCompleteBipartiteGraph(side, side));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinWeightPerfectMatching(g, w));
  }
}
BENCHMARK(BM_HungarianMatching)->Arg(32)->Arg(128);

}  // namespace
}  // namespace dpsp

BENCHMARK_MAIN();
