// Experiment E11 (§1.2 "Scaling"): every error bound scales linearly with
// the neighboring-relation radius rho. With rho = 1/V instead of 1, the
// tree mechanism's error drops from O(log^2.5 V)/eps to O(log^2.5 V)/(V
// eps) and Algorithm 3's path error from O(k log E)/eps to O(k log E)/(V
// eps). The table sweeps rho and shows the measured errors track it
// linearly.

#include "bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/private_shortest_path.h"
#include "core/tree_distance.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void Run() {
  Rng rng(kBenchSeed);
  const int n = 256;
  Graph tree = OrDie(MakeRandomTree(n, &rng));
  EdgeWeights tree_w = MakeUniformWeights(tree, 0.0, 5.0, &rng);
  DistanceMatrix tree_exact = OrDie(AllPairsDijkstra(tree, tree_w));

  Graph er = OrDie(MakeConnectedErdosRenyi(n, 0.03, &rng));
  EdgeWeights er_w = MakeUniformWeights(er, 0.0, 5.0, &rng);
  ShortestPathTree er_exact = OrDie(Dijkstra(er, er_w, 0));

  Table table("E11: error scales linearly in the neighbor l1 radius rho",
              {"mechanism", "rho", "mean|err|", "err/rho (should be flat)"});
  for (double rho : {1.0, 0.1, 0.01, 1.0 / n}) {
    PrivacyParams params{1.0, 0.0, rho};

    OnlineStats tree_err;
    for (int t = 0; t < 3; ++t) {
      auto oracle = OrDie(TreeAllPairsOracle::Build(tree, tree_w, params,
                                                    &rng));
      OracleErrorReport report =
          OrDie(EvaluateOracleAllPairs(tree, tree_exact, *oracle));
      tree_err.Add(report.mean_abs_error);
    }
    table.Row()
        .Add("tree-recursive")
        .Add(rho, 4)
        .Add(tree_err.mean(), 4)
        .Add(tree_err.mean() / rho, 4);

    OnlineStats path_err;
    PrivateShortestPathOptions options;
    options.params = params;
    for (int t = 0; t < 3; ++t) {
      PrivateShortestPaths release =
          OrDie(PrivateShortestPaths::Release(er, er_w, options, &rng));
      for (VertexId v = 1; v < n; v += 11) {
        auto path = OrDie(release.Path(0, v));
        path_err.Add(TotalWeight(er_w, path) -
                     er_exact.distance[static_cast<size_t>(v)]);
      }
    }
    table.Row()
        .Add("algorithm-3 paths")
        .Add(rho, 4)
        .Add(path_err.mean(), 4)
        .Add(path_err.mean() / rho, 4);
  }
  table.Print();
  std::puts(
      "\nShape check: the err/rho column is approximately constant per "
      "mechanism —\nexactly the claim of the Scaling paragraph in §1.2.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
