// Experiment E10 (Theorems B.4 / B.6): private low-weight perfect
// matchings. (a) The reconstruction attack on the hourglass gadget
// (Figure 3 right) showing the Omega(V) floor; (b) the Laplace+matching
// mechanism on complete bipartite graphs against the (V/eps) log(E/gamma)
// bound.

#include "bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/private_matching.h"
#include "core/reconstruction.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void Run() {
  Rng rng(kBenchSeed);

  Table lower("E10a: Theorem B.4 matching lower bound (hourglass gadget)",
              {"n gadgets", "V", "eps", "mean matching error",
               "alpha (Thm B.4)", "RR optimum"});
  for (int n : {40, 150}) {
    for (double eps : {0.1, 0.5, 1.0, 2.0, 4.0}) {
      PrivacyParams params{eps, 0.0, 1.0};
      AttackReport report = OrDie(RunReconstructionExperiment(
          AttackKind::kMatching, n, params, 30, &rng));
      lower.Row()
          .Add(n)
          .Add(4 * n)
          .Add(eps, 3)
          .Add(report.mean_object_error, 4)
          .Add(MatchingLowerBound(4 * n, eps, 0.0), 4)
          .Add(report.randomized_response_expectation, 4);
    }
  }
  lower.Print();

  Table upper("E10b: Theorem B.6 Laplace matching upper bound",
              {"graph", "V", "eps", "trials", "mean error", "max error",
               "bound(.05)"});
  for (int side : {8, 14}) {
    Graph g = OrDie(MakeCompleteBipartiteGraph(side, side));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 3.0, &rng);
    Matching optimal = OrDie(MinWeightPerfectMatching(g, w));
    double opt = optimal.Weight(w);
    for (double eps : {0.5, 1.0, 2.0}) {
      PrivacyParams params{eps, 0.0, 1.0};
      OnlineStats error;
      const int trials = 15;
      for (int t = 0; t < trials; ++t) {
        PrivateMatchingResult result =
            OrDie(PrivateMatching(g, w, params, &rng));
        error.Add(result.matching.Weight(w) - opt);
      }
      upper.Row()
          .Add(StrFormat("K(%d,%d)", side, side))
          .Add(2 * side)
          .Add(eps, 3)
          .Add(trials)
          .Add(error.mean(), 4)
          .Add(error.max(), 4)
          .Add(PrivateMatchingErrorBound(2 * side, g.num_edges(), params,
                                         0.05),
               4);
    }
  }
  upper.Print();
  std::puts(
      "\nShape check: gadget error respects the Theorem B.4 floor; the "
      "mechanism error\nscales ~1/eps and stays below the Theorem B.6 "
      "bound.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
