// Experiment E4 (Theorems 4.3 / 4.5 / 4.6): all-pairs distances on
// bounded-weight graphs via k-coverings. Sweeps graph size, weight bound M
// and the privacy regime (pure vs approximate), reporting the automatic k,
// the covering size Z, measured errors and the proved per-query bound.

#include <cmath>

#include "bench_util.h"
#include "common/table.h"
#include "core/bounded_weight.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void Run() {
  Table table(
      "E4: Theorems 4.5/4.6 bounded-weight all-pairs distances (eps=1)",
      {"graph", "V", "M", "regime", "k", "Z", "noise b", "mean|err|",
       "max|err|", "bound(.05)"});
  Rng rng(kBenchSeed);

  for (int n : {100, 225, 400}) {
    Graph er = OrDie(MakeConnectedErdosRenyi(n, 6.0 / n, &rng));
    for (double m : {0.5, 1.0, 4.0}) {
      EdgeWeights w = MakeUniformWeights(er, 0.0, m, &rng);
      DistanceMatrix exact = OrDie(AllPairsDijkstra(er, w));
      for (double delta : {0.0, 1e-6}) {
        BoundedWeightOptions options;
        options.params = PrivacyParams{1.0, delta, 1.0};
        options.max_weight = m;
        auto oracle = OrDie(BoundedWeightOracle::Build(er, w, options, &rng));
        OracleErrorReport report =
            OrDie(EvaluateOracleAllPairs(er, exact, *oracle));
        table.Row()
            .Add(StrFormat("ER(%d)", n))
            .Add(n)
            .Add(m, 3)
            .Add(delta == 0.0 ? "pure" : "approx")
            .Add(oracle->covering().k)
            .Add(oracle->covering().size())
            .Add(oracle->noise_scale(), 4)
            .Add(report.mean_abs_error, 4)
            .Add(report.max_abs_error, 4)
            .Add(oracle->ErrorBound(0.05), 4);
      }
    }
  }
  table.Print();

  // E4b: the Theorem 4.3 tradeoff made visible. On small-world ER graphs
  // the hop diameter is tiny and the automatic k collapses the covering to
  // one center (see E4 above), so sweep k explicitly on a large-diameter
  // geometric graph: small k => many centers => composition noise
  // dominates; as k grows the noise falls ~|Z|. The 2kM bias term only
  // overtakes once k reaches ~sqrt(V/(M eps)), which at V=400 coincides
  // with the graph's hop diameter, so within the feasible range the error
  // is monotone and the Theorem 4.3 auto-k sits at its floor.
  GeometricGraph geo = OrDie(MakeRandomGeometricGraph(400, 0.07, &rng));
  EdgeWeights geo_w = MakeUniformWeights(geo.graph, 0.0, 1.0, &rng);
  DistanceMatrix geo_exact = OrDie(AllPairsDijkstra(geo.graph, geo_w));
  Table tradeoff(
      "E4b: covering radius sweep, geometric graph V=400, M=1, eps=1",
      {"k", "Z", "noise kind", "noise b", "mean|err|", "max|err|",
       "bound(.05)"});
  for (int k : {1, 2, 3, 5, 8, 12, 20}) {
    for (auto noise : {BoundedWeightOptions::NoiseKind::kLaplace,
                       BoundedWeightOptions::NoiseKind::kGaussian}) {
      BoundedWeightOptions options;
      options.params = PrivacyParams{0.9, 1e-6, 1.0};
      options.max_weight = 1.0;
      options.k = k;
      options.strategy = BoundedWeightOptions::CoveringStrategy::kGreedy;
      options.noise = noise;
      auto oracle =
          OrDie(BoundedWeightOracle::Build(geo.graph, geo_w, options, &rng));
      OracleErrorReport report =
          OrDie(EvaluateOracleAllPairs(geo.graph, geo_exact, *oracle));
      tradeoff.Row()
          .Add(k)
          .Add(oracle->covering().size())
          .Add(noise == BoundedWeightOptions::NoiseKind::kLaplace
                   ? "laplace"
                   : "gaussian")
          .Add(oracle->noise_scale(), 4)
          .Add(report.mean_abs_error, 4)
          .Add(report.max_abs_error, 4)
          .Add(oracle->ErrorBound(0.05), 4);
    }
  }
  tradeoff.Print();
  std::puts(
      "\nShape check: approx-DP error ~ sqrt(V M / eps) beats pure-DP error"
      " ~ (V M)^{2/3};\nboth stay below their bounds and grow sublinearly "
      "in V (the paper's headline).\nE4b: error falls as k grows (noise ~ "
      "|Z| shrinks) until k hits the Theorem 4.3\nbalance point ~ "
      "sqrt(V/(M eps)); Gaussian noise tightens max error when |Z| is\n"
      "large (many composed queries), Laplace wins for small |Z|.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
