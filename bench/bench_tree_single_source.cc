// Experiment E1 (Theorem 4.1): single-source distance release on rooted
// trees. For each tree family and size, reports the measured per-vertex
// error of the recursive mechanism against the proved high-probability
// bound O(log^1.5 V log(1/gamma))/eps.
//
// Expected shape: measured error grows polylogarithmically in V (column
// "max|err|" grows far slower than V) and stays below "bound".

#include <cmath>
#include <string>

#include "bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/tree_distance.h"
#include "graph/generators.h"
#include "graph/tree.h"

namespace dpsp {
namespace {

Result<Graph> MakeTree(const std::string& family, int n, Rng* rng) {
  if (family == "path") return MakePathGraph(n);
  if (family == "balanced") return MakeBalancedTree(n, 2);
  if (family == "random") return MakeRandomTree(n, rng);
  if (family == "caterpillar") return MakeCaterpillarTree(n / 4, 3);
  return MakeStarGraph(n);
}

void Run() {
  const double eps = 1.0;
  const double gamma = 0.05;
  const int trials = 5;
  PrivacyParams params{eps, 0.0, 1.0};

  Table table("E1: Theorem 4.1 single-source tree distances (eps=1)",
              {"family", "V", "trials", "mean|err|", "max|err|",
               "bound(gamma=.05/V)", "noisy values"});
  Rng rng(kBenchSeed);
  for (const char* family :
       {"path", "balanced", "random", "caterpillar", "star"}) {
    for (int n : {128, 512, 2048, 8192}) {
      Graph g = OrDie(MakeTree(family, n, &rng));
      int v = g.num_vertices();
      EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
      RootedTree tree = OrDie(RootedTree::FromGraph(g, 0));
      std::vector<double> exact = tree.RootDistances(w);

      OnlineStats err;
      double max_err = 0.0;
      int noisy = 0;
      for (int t = 0; t < trials; ++t) {
        TreeSingleSourceRelease release = OrDie(
            ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng));
        noisy = release.num_noisy_values;
        for (VertexId x = 0; x < v; ++x) {
          double e = std::fabs(release.estimates[static_cast<size_t>(x)] -
                               exact[static_cast<size_t>(x)]);
          err.Add(e);
          max_err = std::max(max_err, e);
        }
      }
      // Union bound over all V released values per trial.
      double bound = TreeSingleSourceErrorBound(v, params, gamma / v);
      table.Row()
          .Add(family)
          .Add(v)
          .Add(trials)
          .Add(err.mean(), 4)
          .Add(max_err, 4)
          .Add(bound, 4)
          .Add(noisy);
    }
  }
  table.Print();
  std::puts(
      "\nShape check: max|err| grows ~log^1.5 V (compare 128 -> 8192:"
      " should grow ~2x, not 64x) and stays below the bound.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
