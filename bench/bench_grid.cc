// Experiment E5 (Theorem 4.7): the explicit grid covering. On the
// sqrt(V) x sqrt(V) grid, centers spaced V^{1/3} apart give |Z| ~ V^{1/3}
// and covering radius ~ 2 V^{1/3}, hence error ~ V^{1/3}(M + 1/eps ...) —
// better than the generic Theorem 4.3 tuning. Compares the explicit grid
// covering against MM75 and greedy coverings at the generic radius.

#include <cmath>

#include "bench_util.h"
#include "common/table.h"
#include "core/bounded_weight.h"
#include "graph/covering.h"
#include "graph/generators.h"

namespace dpsp {
namespace {

void Run() {
  const double m = 1.0;
  PrivacyParams params{1.0, 1e-6, 1.0};

  Table table("E5: Theorem 4.7 grid covering (M=1, eps=1, delta=1e-6)",
              {"side", "V", "covering", "k", "Z", "mean|err|", "max|err|",
               "bound(.05)"});
  Rng rng(kBenchSeed);
  for (int side : {16, 25, 36}) {
    int v = side * side;
    Graph g = OrDie(MakeGridGraph(side, side));
    EdgeWeights w = MakeUniformWeights(g, 0.0, m, &rng);
    DistanceMatrix exact = OrDie(AllPairsDijkstra(g, w));

    int stride = std::max(2, static_cast<int>(std::round(std::cbrt(v))));
    Covering grid_cover = OrDie(GridCovering(g, side, side, stride));

    BoundedWeightOptions options;
    options.params = params;
    options.max_weight = m;

    auto report_for = [&](const char* name, const Covering& covering) {
      auto oracle = OrDie(BoundedWeightOracle::BuildWithCovering(
          g, w, covering, options, &rng));
      OracleErrorReport report =
          OrDie(EvaluateOracleAllPairs(g, exact, *oracle));
      table.Row()
          .Add(side)
          .Add(v)
          .Add(name)
          .Add(covering.k)
          .Add(covering.size())
          .Add(report.mean_abs_error, 4)
          .Add(report.max_abs_error, 4)
          .Add(oracle->ErrorBound(0.05), 4);
    };

    report_for("grid(Thm4.7)", grid_cover);
    report_for("mm75(Lem4.4)",
               OrDie(MM75ResidueCovering(g, grid_cover.k)));
    report_for("greedy", OrDie(GreedyCovering(g, grid_cover.k)));
  }
  table.Print();
  std::puts(
      "\nShape check: the structured grid covering attains a smaller (or "
      "equal) Z at the\nsame radius, and error scales ~V^{1/3} across the "
      "three grid sizes.");
}

}  // namespace
}  // namespace dpsp

int main() {
  dpsp::Run();
  return 0;
}
